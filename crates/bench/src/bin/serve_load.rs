//! **Serving-layer load study** — drives a real in-process `sweep-serve`
//! instance over loopback sockets with a mixed request trace (distinct
//! scheduling requests, repeats of the same content, `/healthz` and
//! `/v1/presets` probes) and reports end-to-end latency percentiles,
//! throughput, and the content-addressed cache's hit rate.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin serve_load -- --scale 0.01
//! ```
//!
//! The trace runs **twice**: once with request tracing sampled out
//! (`trace_sample_every = 0`, the baseline) and once fully traced — the
//! throughput delta is the measured cost of the observability layer and
//! the traced run's slow-request exemplars are (a) certified well-formed
//! through the SW028 analyzer and (b) exported as a Chrome trace
//! (`<out>/serve_slow_trace.json`, a CI artifact).
//!
//! Writes `<out>/BENCH_serve.json` (quoted by EXPERIMENTS.md §Serving).
//! The hot/cold split is the point: every *distinct* scheduling request
//! pays the induce+trials cost once, every repeat is a digest lookup, so
//! the p50 of a mostly-repeated trace sits orders of magnitude under the
//! cold p99.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use sweep_bench::BenchArgs;
use sweep_serve::{
    certify_cluster_identity, AccessLogSink, CacheStats, ClusterConfig, Member, ScheduleRequest,
    Server, ServerConfig,
};
use sweep_telemetry::RequestTrace;

/// Client worker threads issuing requests concurrently.
const CLIENTS: usize = 4;
/// Requests per client thread.
const REQUESTS_PER_CLIENT: usize = 25;
/// Distinct schedule-request contents in the trace (seeds 0..DISTINCT).
const DISTINCT: usize = 4;

fn schedule_body(scale: f64, seed: u64) -> String {
    format!(
        "{{\"preset\": \"tetonly\", \"scale\": {scale}, \"sn\": 2, \"m\": 4, \
         \"seed\": {seed}, \"b\": 4}}"
    )
}

/// One blocking request/response exchange; returns (latency µs, status).
fn exchange(addr: std::net::SocketAddr, raw: &str) -> (f64, u16) {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    let micros = started.elapsed().as_secs_f64() * 1e6;
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (micros, status)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One full run of the mixed trace against a fresh server.
struct Phase {
    latencies: Vec<f64>,
    schedule_lat: Vec<f64>,
    errors: usize,
    wall_secs: f64,
    stats: CacheStats,
    slow_traces: Vec<RequestTrace>,
}

impl Phase {
    fn rps(&self) -> f64 {
        self.latencies.len() as f64 / self.wall_secs
    }
}

fn run_phase(scale: f64, trace_sample_every: u64) -> Phase {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: CLIENTS,
        max_inflight: 4 * CLIENTS,
        trace_sample_every,
        // Lines per request would swamp the bench output; the log-line
        // format is covered by serve_tracing.rs over real sockets.
        access_log: AccessLogSink::Null,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle().expect("handle");
    let service = server.service();
    let server_thread = std::thread::spawn(move || server.run());

    // Warm nothing: the first occurrence of each distinct request in the
    // trace is the cold path by construction.
    let post = |body: &str| {
        format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    let wall = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut schedule_lat: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let post = &post;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut sched = Vec::new();
                    let mut errs = 0usize;
                    for i in 0..REQUESTS_PER_CLIENT {
                        // 1-in-5 requests probe a cheap GET endpoint; the
                        // rest cycle through DISTINCT schedule contents,
                        // so each content repeats many times across the
                        // trace.
                        let (raw, is_sched) = match i % 5 {
                            0 if c % 2 == 0 => (
                                "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n".to_string(),
                                false,
                            ),
                            0 => (
                                "GET /v1/presets HTTP/1.1\r\nHost: bench\r\n\r\n".to_string(),
                                false,
                            ),
                            _ => {
                                let seed = ((c + i) % DISTINCT) as u64;
                                (post(&schedule_body(scale, seed)), true)
                            }
                        };
                        let (micros, status) = exchange(addr, &raw);
                        // 429 is the server doing its job under load, not
                        // a failure; anything else non-200 is.
                        if status != 200 && status != 429 {
                            errs += 1;
                        }
                        lat.push(micros);
                        if is_sched && status == 200 {
                            sched.push(micros);
                        }
                    }
                    (lat, sched, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, sched, errs) = h.join().expect("client thread");
            latencies.extend(lat);
            schedule_lat.extend(sched);
            errors += errs;
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    schedule_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Phase {
        latencies,
        schedule_lat,
        errors,
        wall_secs,
        stats: service.cache().stats(),
        slow_traces: service.ops().slow_traces(),
    }
}

/// One run of the schedule trace against a two-shard cluster, with a
/// mid-run shard kill: the surviving shard must keep answering 200
/// with bit-identical schedules (SW029-certified).
struct ClusterPhase {
    latencies: Vec<f64>,
    errors: usize,
    wall_secs: f64,
    forwards: u64,
    fallbacks: u64,
    rpc_serves: u64,
    survivor_200s: usize,
}

impl ClusterPhase {
    fn rps(&self) -> f64 {
        self.latencies.len() as f64 / self.wall_secs
    }
}

fn run_cluster_phase(scale: f64) -> ClusterPhase {
    let members = vec![
        Member {
            id: 0,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        },
        Member {
            id: 1,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        },
    ];
    let bind = |self_id: u64| {
        let mut cluster = ClusterConfig::new(self_id, members.clone());
        cluster.connect_timeout = std::time::Duration::from_millis(250);
        Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: CLIENTS,
            max_inflight: 4 * CLIENTS,
            trace_sample_every: 0,
            access_log: AccessLogSink::Null,
            cluster: Some(cluster),
            ..ServerConfig::default()
        })
        .expect("bind shard")
    };
    let s0 = bind(0);
    let s1 = bind(1);
    let rpc0 = s0.rpc_addr().expect("rpc addr");
    let rpc1 = s1.rpc_addr().expect("rpc addr");
    s0.cluster()
        .expect("cluster")
        .set_peer_addr(1, &rpc1.to_string());
    s1.cluster()
        .expect("cluster")
        .set_peer_addr(0, &rpc0.to_string());
    let addr0 = s0.local_addr().expect("addr");
    let addr1 = s1.local_addr().expect("addr");
    let (svc0, svc1) = (s0.service(), s1.service());
    let cluster0 = s0.cluster().expect("cluster");
    let (h0, h1) = (
        s0.shutdown_handle().expect("handle"),
        s1.shutdown_handle().expect("handle"),
    );
    let t0 = std::thread::spawn(move || s0.run());
    let t1 = std::thread::spawn(move || s1.run());

    let post = |body: &str| {
        format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    // The same mixed schedule trace, with clients split across the two
    // shard frontends: repeats of a content not homed where they land
    // exercise the forward path; repeats that are exercise the local
    // cache. No client knows or cares about the ring.
    let wall = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let post = &post;
                let addr = if c % 2 == 0 { addr0 } else { addr1 };
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut errs = 0usize;
                    for i in 0..REQUESTS_PER_CLIENT {
                        let seed = ((c + i) % DISTINCT) as u64;
                        let (micros, status) = exchange(addr, &post(&schedule_body(scale, seed)));
                        if status != 200 && status != 429 {
                            errs += 1;
                        }
                        lat.push(micros);
                    }
                    (lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread");
            latencies.extend(lat);
            errors += errs;
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    // SW029 gate while both shards are up: every distinct content, on
    // both shards, whatever path served it, is bit-identical to a
    // single-node cold compute.
    for seed in 0..DISTINCT as u64 {
        let req = ScheduleRequest::from_json(&schedule_body(scale, seed)).expect("request");
        for svc in [&svc0, &svc1] {
            let report = certify_cluster_identity(svc, &req).expect("certify");
            assert!(
                !report.has_errors(),
                "SW029 gate failed:\n{}",
                report.render_text()
            );
        }
    }

    // Kill shard 1 outright, then drive the survivor with every warm
    // content plus as many cold ones: cold contents homed on the corpse
    // must degrade to local compute, and everything must answer 200.
    h1.shutdown();
    t1.join().expect("shard 1 thread").expect("shard 1 run");
    drop(svc1);
    let mut survivor_200s = 0usize;
    for seed in 0..2 * DISTINCT as u64 {
        let (_, status) = exchange(addr0, &post(&schedule_body(scale, seed)));
        if status == 200 {
            survivor_200s += 1;
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let counters = cluster0.counters();
    let phase = ClusterPhase {
        latencies,
        errors,
        wall_secs,
        forwards: counters.forwards.load(std::sync::atomic::Ordering::SeqCst),
        fallbacks: counters.fallbacks.load(std::sync::atomic::Ordering::SeqCst),
        rpc_serves: counters
            .rpc_serves
            .load(std::sync::atomic::Ordering::SeqCst),
        survivor_200s,
    };
    h0.shutdown();
    t0.join().expect("shard 0 thread").expect("shard 0 run");
    phase
}

/// Bridges the telemetry trace type into the analyzer's plain-data form.
fn to_trace_data(t: &RequestTrace) -> sweep_analyze::RequestTraceData {
    sweep_analyze::RequestTraceData {
        request_id: t.request_id,
        coalesced_onto: t.coalesced_onto,
        opened_spans: t.opened,
        spans: t
            .spans
            .iter()
            .map(|s| sweep_analyze::TraceSpanData {
                id: s.id,
                parent: s.parent,
                name: s.name.to_string(),
                start_us: s.start_us,
                dur_us: s.dur_us,
            })
            .collect(),
    }
}

fn main() {
    let args = BenchArgs::parse();

    // Phase 1: tracing sampled out — the throughput baseline.
    let untraced = run_phase(args.scale, 0);
    // Phase 2: every request traced; its exemplars feed SW028 + the
    // Chrome artifact.
    let traced = run_phase(args.scale, 1);
    // Phase 3: the same schedule trace against a two-shard cluster with
    // a mid-run shard kill; SW029 gates bit-identity on every path.
    let cluster = run_cluster_phase(args.scale);
    assert_eq!(
        cluster.survivor_200s,
        2 * DISTINCT,
        "survivor shard failed to answer every content after the kill"
    );
    eprintln!(
        "# SW029: {} cluster-served contents certified on both shards",
        DISTINCT
    );

    // SW028 gate: the span trees the traced run produced must be
    // structurally sound, else the Server-Timing / slow-trace numbers
    // above them are fiction. A coalesced follower may reference a
    // leader that did not survive the slow-buffer cut, so certify the
    // corpus with coalesce references projected onto it.
    assert!(
        !traced.slow_traces.is_empty(),
        "traced run captured no slow-request exemplars"
    );
    let in_corpus: std::collections::BTreeSet<u64> =
        traced.slow_traces.iter().map(|t| t.request_id).collect();
    let corpus: Vec<_> = traced
        .slow_traces
        .iter()
        .map(|t| {
            let mut d = to_trace_data(t);
            d.coalesced_onto = d.coalesced_onto.filter(|l| in_corpus.contains(l));
            d
        })
        .collect();
    let report = sweep_analyze::analyze_trace_trees(&corpus);
    assert!(
        !report.has_errors(),
        "SW028 gate failed on the serve_load trace corpus:\n{}",
        report.render_text()
    );
    eprintln!("# SW028: {} trace tree(s) certified", corpus.len());

    // Chrome trace artifact of the slowest requests.
    let chrome = sweep_telemetry::traces_to_chrome(&traced.slow_traces);
    sweep_telemetry::validate_chrome_trace(&chrome).expect("valid chrome trace");

    let overhead = (untraced.rps() - traced.rps()) / untraced.rps().max(1e-9);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"serve_load\",");
    let _ = writeln!(json, "  \"preset\": \"tetonly\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"requests\": {},", untraced.latencies.len());
    let _ = writeln!(json, "  \"distinct_schedule_contents\": {DISTINCT},");
    let _ = writeln!(json, "  \"errors\": {},", untraced.errors + traced.errors);
    let _ = writeln!(json, "  \"wall_secs\": {:.3},", untraced.wall_secs);
    let _ = writeln!(json, "  \"throughput_rps\": {:.1},", untraced.rps());
    let _ = writeln!(
        json,
        "  \"latency_us\": {{\"p50\": {:.0}, \"p99\": {:.0}, \"max\": {:.0}}},",
        percentile(&untraced.latencies, 0.50),
        percentile(&untraced.latencies, 0.99),
        untraced.latencies.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"schedule_latency_us\": {{\"p50\": {:.0}, \"p99\": {:.0}}},",
        percentile(&untraced.schedule_lat, 0.50),
        percentile(&untraced.schedule_lat, 0.99)
    );
    let hit_rate =
        untraced.stats.hits as f64 / (untraced.stats.hits + untraced.stats.misses).max(1) as f64;
    let _ = writeln!(
        json,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"coalesced\": {}, \"hit_rate\": {hit_rate:.3}}},",
        untraced.stats.hits,
        untraced.stats.misses,
        untraced.stats.evictions,
        untraced.stats.coalesced
    );
    let _ = writeln!(
        json,
        "  \"tracing\": {{\"untraced_rps\": {:.1}, \"traced_rps\": {:.1}, \
         \"overhead_frac\": {overhead:.4}, \"slow_exemplars\": {}, \
         \"sw028\": \"certified\"}},",
        untraced.rps(),
        traced.rps(),
        traced.slow_traces.len()
    );
    let _ = writeln!(
        json,
        "  \"cluster\": {{\"shards\": 2, \"single_shard_rps\": {:.1}, \
         \"two_shard_rps\": {:.1}, \
         \"latency_us\": {{\"p50\": {:.0}, \"p99\": {:.0}}}, \
         \"errors\": {}, \"shard0_forwards\": {}, \"shard0_fallbacks\": {}, \
         \"shard0_rpc_serves\": {}, \"survivor_200s_after_kill\": {}, \
         \"sw029\": \"certified\"}},",
        untraced.rps(),
        cluster.rps(),
        percentile(&cluster.latencies, 0.50),
        percentile(&cluster.latencies, 0.99),
        cluster.errors,
        cluster.forwards,
        cluster.fallbacks,
        cluster.rpc_serves,
        cluster.survivor_200s
    );
    let _ = writeln!(
        json,
        "  \"note\": \"in-process server over loopback; p50 is dominated by cache hits \
         (digest lookup), the cold tail by DAG induction + best-of-b trials; the traced \
         phase re-runs the same trace with full span trees on; the cluster phase splits \
         the trace across two shards routed by the consistent-hash ring, then SIGKILLs \
         one shard and replays every content against the survivor\""
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: cannot create {}: {e}", args.out.display());
    }
    let path = args.out.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    let trace_path = args.out.join("serve_slow_trace.json");
    match std::fs::write(&trace_path, &chrome) {
        Ok(()) => eprintln!("# wrote {}", trace_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", trace_path.display()),
    }
    print!("{json}");
}
