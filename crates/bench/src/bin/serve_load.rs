//! **Serving-layer load study** — drives a real in-process `sweep-serve`
//! instance over loopback sockets with a mixed request trace (distinct
//! scheduling requests, repeats of the same content, `/healthz` and
//! `/v1/presets` probes) and reports end-to-end latency percentiles,
//! throughput, and the content-addressed cache's hit rate.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin serve_load -- --scale 0.01
//! ```
//!
//! Writes `<out>/BENCH_serve.json` (quoted by EXPERIMENTS.md §Serving).
//! The hot/cold split is the point: every *distinct* scheduling request
//! pays the induce+trials cost once, every repeat is a digest lookup, so
//! the p50 of a mostly-repeated trace sits orders of magnitude under the
//! cold p99.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use sweep_bench::BenchArgs;
use sweep_serve::{Server, ServerConfig};

/// Client worker threads issuing requests concurrently.
const CLIENTS: usize = 4;
/// Requests per client thread.
const REQUESTS_PER_CLIENT: usize = 25;
/// Distinct schedule-request contents in the trace (seeds 0..DISTINCT).
const DISTINCT: usize = 4;

fn schedule_body(scale: f64, seed: u64) -> String {
    format!(
        "{{\"preset\": \"tetonly\", \"scale\": {scale}, \"sn\": 2, \"m\": 4, \
         \"seed\": {seed}, \"b\": 4}}"
    )
}

/// One blocking request/response exchange; returns (latency µs, status).
fn exchange(addr: std::net::SocketAddr, raw: &str) -> (f64, u16) {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    let micros = started.elapsed().as_secs_f64() * 1e6;
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (micros, status)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = BenchArgs::parse();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: CLIENTS,
        max_inflight: 4 * CLIENTS,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle().expect("handle");
    let service = server.service();
    let server_thread = std::thread::spawn(move || server.run());

    // Warm nothing: the first occurrence of each distinct request in the
    // trace is the cold path by construction.
    let post = |body: &str| {
        format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    let wall = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut schedule_lat: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let post = &post;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut sched = Vec::new();
                    let mut errs = 0usize;
                    for i in 0..REQUESTS_PER_CLIENT {
                        // 1-in-5 requests probe a cheap GET endpoint; the
                        // rest cycle through DISTINCT schedule contents,
                        // so each content repeats many times across the
                        // trace.
                        let (raw, is_sched) = match i % 5 {
                            0 if c % 2 == 0 => (
                                "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n".to_string(),
                                false,
                            ),
                            0 => (
                                "GET /v1/presets HTTP/1.1\r\nHost: bench\r\n\r\n".to_string(),
                                false,
                            ),
                            _ => {
                                let seed = ((c + i) % DISTINCT) as u64;
                                (post(&schedule_body(args.scale, seed)), true)
                            }
                        };
                        let (micros, status) = exchange(addr, &raw);
                        // 429 is the server doing its job under load, not
                        // a failure; anything else non-200 is.
                        if status != 200 && status != 429 {
                            errs += 1;
                        }
                        lat.push(micros);
                        if is_sched && status == 200 {
                            sched.push(micros);
                        }
                    }
                    (lat, sched, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, sched, errs) = h.join().expect("client thread");
            latencies.extend(lat);
            schedule_lat.extend(sched);
            errors += errs;
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    schedule_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let stats = service.cache().stats();
    let total = latencies.len();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"serve_load\",");
    let _ = writeln!(json, "  \"preset\": \"tetonly\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"requests\": {total},");
    let _ = writeln!(json, "  \"distinct_schedule_contents\": {DISTINCT},");
    let _ = writeln!(json, "  \"errors\": {errors},");
    let _ = writeln!(json, "  \"wall_secs\": {wall_secs:.3},");
    let _ = writeln!(
        json,
        "  \"throughput_rps\": {:.1},",
        total as f64 / wall_secs
    );
    let _ = writeln!(
        json,
        "  \"latency_us\": {{\"p50\": {:.0}, \"p99\": {:.0}, \"max\": {:.0}}},",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"schedule_latency_us\": {{\"p50\": {:.0}, \"p99\": {:.0}}},",
        percentile(&schedule_lat, 0.50),
        percentile(&schedule_lat, 0.99)
    );
    let _ = writeln!(
        json,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"coalesced\": {}, \"hit_rate\": {hit_rate:.3}}},",
        stats.hits, stats.misses, stats.evictions, stats.coalesced
    );
    let _ = writeln!(
        json,
        "  \"note\": \"in-process server over loopback; p50 is dominated by cache hits \
         (digest lookup), the cold tail by DAG induction + best-of-b trials\""
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: cannot create {}: {e}", args.out.display());
    }
    let path = args.out.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    print!("{json}");
}
