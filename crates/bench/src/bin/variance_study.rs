//! **Extension: variance of the randomized algorithms** — Theorems 1–2
//! are "with high probability" statements; this experiment replicates
//! each randomized algorithm across independent delay/assignment draws
//! and reports mean ± std of the makespan, confirming that the makespan
//! concentrates tightly (coefficient of variation of a few percent) so
//! single-draw comparisons like the paper's plots are meaningful.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin variance_study -- --scale 0.05
//! ```

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{lower_bounds, replicate, Algorithm, AssignmentDraw};
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    let (_, instance) = args.instance(MeshPreset::Tetonly, 4);
    let runs = 10;
    let mut sink = CsvSink::new(
        &args,
        "variance_study",
        "algorithm,m,runs,min,mean,max,std_dev,cv,mean_ratio_lb",
    );
    for m in [16usize, 64, 256] {
        if m * 4 > instance.num_tasks() {
            continue;
        }
        let lb = lower_bounds(&instance, m).paper() as f64;
        for alg in [
            Algorithm::RandomDelay,
            Algorithm::RandomDelayPriorities,
            Algorithm::DescendantPriority { delays: true },
            Algorithm::Dfds { delays: true },
        ] {
            let sum = replicate(
                &instance,
                alg,
                m,
                &AssignmentDraw::RandomCells,
                args.seed,
                runs,
            );
            sink.row(format_args!(
                "{name},{m},{runs},{min},{mean:.1},{max},{sd:.1},{cv:.4},{ratio:.3}",
                name = alg.name(),
                min = sum.min,
                mean = sum.mean,
                max = sum.max,
                sd = sum.std_dev,
                cv = sum.cv(),
                ratio = sum.mean / lb,
            ));
        }
    }
    sink.finish();
}
