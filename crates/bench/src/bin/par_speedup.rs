//! Sequential-vs-parallel wall-clock measurement of the parallel
//! execution layer (ISSUE 4): `induce_all` + `best_of_trials` on the
//! tetonly-scale preset at 1/2/4/8 workers.
//!
//! Besides the timings, every width's outputs (induced DAGs, induction
//! stats, winning schedule, full per-trial record) are diffed against
//! the 1-worker reference — the run aborts with a non-zero exit if any
//! width produces a different bit pattern. Results land in
//! `<out>/par_speedup.csv` and `<out>/BENCH_par.json`; the JSON also
//! records the host's available parallelism, since measured speedup is
//! bounded by physical cores (a 1-core container shows ≈ 1× regardless
//! of worker count).
//!
//! A second, untimed pass per width runs with telemetry enabled and
//! records the lock-free pool counters (steal attempts, failed CAS
//! count, parked workers) and the trial-scratch allocation counters
//! (grow events per trial — zero after warm-up means the arena path is
//! allocation-free in steady state) into the JSON's `lockfree` section.
//! Keeping the instrumented pass separate leaves the timed pass free of
//! telemetry overhead.

use std::fmt::Write as _;
use std::time::Instant;

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{best_of_trials, Algorithm, Assignment, BestOfTrials};
use sweep_dag::{induce_all, SweepInstance};
use sweep_mesh::{MeshPreset, SweepMesh as _};
use sweep_quadrature::QuadratureSet;

/// Independent random-delay draws per width.
const TRIALS: usize = 32;
/// Processors for the scheduling trials.
const PROCS: usize = 16;
/// Timed repetitions per width; the fastest is reported. Single-core
/// containers jitter enough that one-shot timings routinely swing
/// ±30% — min-of-R is the standard stabilizer.
const REPEATS: usize = 3;

struct Measurement {
    threads: usize,
    induce_ms: f64,
    trials_ms: f64,
    best: BestOfTrials,
    instance: SweepInstance,
    stats_fingerprint: Vec<(usize, usize, usize)>,
}

fn measure(
    args: &BenchArgs,
    mesh: &sweep_mesh::TetMesh,
    quad: &QuadratureSet,
    threads: usize,
) -> Measurement {
    sweep_pool::set_global_threads(threads);
    let t0 = Instant::now();
    let (dags, stats) = induce_all(mesh, quad);
    let induce_ms = t0.elapsed().as_secs_f64() * 1e3;
    let instance = SweepInstance::new(mesh.num_cells(), dags, "par_speedup");
    let assignment = Assignment::random_cells(instance.num_cells(), PROCS, args.seed);
    let t1 = Instant::now();
    let best = best_of_trials(
        &instance,
        &assignment,
        Algorithm::RandomDelayPriorities,
        TRIALS,
        args.seed,
    );
    let trials_ms = t1.elapsed().as_secs_f64() * 1e3;
    Measurement {
        threads,
        induce_ms,
        trials_ms,
        best,
        instance,
        stats_fingerprint: stats
            .iter()
            .map(|s| (s.raw_edges, s.dropped_edges, s.nontrivial_sccs))
            .collect(),
    }
}

/// Lock-free pool and scratch-arena counters for one width, collected
/// from a telemetry-enabled (untimed) re-run.
struct LockfreeStats {
    threads: usize,
    tasks: u64,
    steals: u64,
    steal_attempts: u64,
    steal_failures: u64,
    parked: u64,
    trials: u64,
    grow_events: u64,
}

fn instrument(
    args: &BenchArgs,
    mesh: &sweep_mesh::TetMesh,
    quad: &QuadratureSet,
    threads: usize,
) -> LockfreeStats {
    sweep_telemetry::reset();
    sweep_telemetry::set_enabled(true);
    let _ = measure(args, mesh, quad, threads);
    sweep_telemetry::set_enabled(false);
    LockfreeStats {
        threads,
        tasks: sweep_telemetry::counter_value("pool.tasks"),
        steals: sweep_telemetry::counter_value("pool.steals"),
        steal_attempts: sweep_telemetry::counter_value("pool.steal_attempts"),
        steal_failures: sweep_telemetry::counter_value("pool.steal_failures"),
        parked: sweep_telemetry::counter_value("pool.parked"),
        trials: sweep_telemetry::counter_value("sched.scratch.trials"),
        grow_events: sweep_telemetry::counter_value("sched.scratch.grows"),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mesh = args.mesh(MeshPreset::Tetonly);
    let quad = QuadratureSet::level_symmetric(4).expect("S4 quadrature");
    let host = sweep_pool::available_threads();

    let mut sink = CsvSink::new(
        &args,
        "par_speedup",
        "threads,induce_ms,trials_ms,total_ms,speedup,identical",
    );

    let reference = measure(&args, &mesh, &quad, 1);

    // Best-of-REPEATS per width; every repeat is diffed against the
    // cold sequential reference, so identity is checked on all runs
    // even though only the fastest is reported.
    let mut best_runs: Vec<(Measurement, bool)> = Vec::new();
    let mut all_identical = true;
    for &threads in &[1usize, 2, 4, 8] {
        let mut best: Option<Measurement> = None;
        let mut width_identical = true;
        for _ in 0..REPEATS {
            let m = measure(&args, &mesh, &quad, threads);
            let identical = m.instance.dags() == reference.instance.dags()
                && m.stats_fingerprint == reference.stats_fingerprint
                && m.best.trial == reference.best.trial
                && m.best.seed == reference.best.seed
                && m.best.outcomes == reference.best.outcomes
                && m.best.schedule.starts() == reference.best.schedule.starts();
            width_identical &= identical;
            if best
                .as_ref()
                .is_none_or(|b| m.induce_ms + m.trials_ms < b.induce_ms + b.trials_ms)
            {
                best = Some(m);
            }
        }
        all_identical &= width_identical;
        best_runs.push((best.expect("REPEATS > 0"), width_identical));
    }
    // The sequential baseline: fastest of the cold reference and the
    // warm width-1 repeats (same code path — the pool degenerates to a
    // plain loop at one worker).
    let seq_total = best_runs
        .iter()
        .filter(|(m, _)| m.threads == 1)
        .map(|(m, _)| m.induce_ms + m.trials_ms)
        .fold(reference.induce_ms + reference.trials_ms, f64::min);

    let mut rows = Vec::new();
    for (m, identical) in &best_runs {
        let total = m.induce_ms + m.trials_ms;
        let speedup = seq_total / total;
        sink.row(format_args!(
            "{},{:.2},{:.2},{:.2},{:.3},{}",
            m.threads, m.induce_ms, m.trials_ms, total, speedup, identical
        ));
        rows.push((
            m.threads,
            m.induce_ms,
            m.trials_ms,
            total,
            speedup,
            *identical,
        ));
    }
    sink.finish();

    // Untimed instrumented pass: same work, telemetry on, counters per
    // width. Runs after the timed loop so its overhead cannot leak into
    // the measurements above.
    let lockfree: Vec<LockfreeStats> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| instrument(&args, &mesh, &quad, threads))
        .collect();
    sweep_pool::set_global_threads(0);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"par_speedup\",");
    let _ = writeln!(json, "  \"preset\": \"tetonly\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"directions\": {},", quad.len());
    let _ = writeln!(json, "  \"cells\": {},", mesh.num_cells());
    let _ = writeln!(json, "  \"trials\": {TRIALS},");
    let _ = writeln!(json, "  \"procs\": {PROCS},");
    let _ = writeln!(json, "  \"host_available_parallelism\": {host},");
    let _ = writeln!(
        json,
        "  \"note\": \"speedup is relative to the forced sequential path (threads=1); wall-clock gains are bounded by host_available_parallelism — on a single-core host all widths measure ~1x while outputs stay bit-identical\","
    );
    let _ = writeln!(json, "  \"sequential_total_ms\": {seq_total:.2},");
    json.push_str("  \"widths\": [\n");
    for (i, (threads, induce_ms, trials_ms, total, speedup, identical)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"induce_ms\": {induce_ms:.2}, \"trials_ms\": {trials_ms:.2}, \"total_ms\": {total:.2}, \"speedup\": {speedup:.3}, \"identical\": {identical}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"lockfree\": [\n");
    for (i, s) in lockfree.iter().enumerate() {
        let comma = if i + 1 < lockfree.len() { "," } else { "" };
        let allocs_per_trial = if s.trials > 0 {
            s.grow_events as f64 / s.trials as f64
        } else {
            0.0
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"tasks\": {}, \"steals\": {}, \"steal_attempts\": {}, \"steal_failures\": {}, \"parked\": {}, \"scratch_trials\": {}, \"scratch_grow_events\": {}, \"allocs_per_trial\": {:.4}}}{comma}",
            s.threads,
            s.tasks,
            s.steals,
            s.steal_attempts,
            s.steal_failures,
            s.parked,
            s.trials,
            s.grow_events,
            allocs_per_trial
        );
    }
    json.push_str("  ]\n}\n");
    let path = args.out.join("BENCH_par.json");
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: cannot create {}: {e}", args.out.display());
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    if !all_identical {
        eprintln!("ERROR: some worker count produced non-identical outputs");
        std::process::exit(1);
    }
}
