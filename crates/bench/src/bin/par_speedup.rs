//! Sequential-vs-parallel wall-clock measurement of the parallel
//! execution layer (ISSUE 4): `induce_all` + `best_of_trials` on the
//! tetonly-scale preset at 1/2/4/8 workers.
//!
//! Besides the timings, every width's outputs (induced DAGs, induction
//! stats, winning schedule, full per-trial record) are diffed against
//! the 1-worker reference — the run aborts with a non-zero exit if any
//! width produces a different bit pattern. Results land in
//! `<out>/par_speedup.csv` and `<out>/BENCH_par.json`; the JSON also
//! records the host's available parallelism, since measured speedup is
//! bounded by physical cores (a 1-core container shows ≈ 1× regardless
//! of worker count).

use std::fmt::Write as _;
use std::time::Instant;

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{best_of_trials, Algorithm, Assignment, BestOfTrials};
use sweep_dag::{induce_all, SweepInstance};
use sweep_mesh::{MeshPreset, SweepMesh as _};
use sweep_quadrature::QuadratureSet;

/// Independent random-delay draws per width.
const TRIALS: usize = 32;
/// Processors for the scheduling trials.
const PROCS: usize = 16;

struct Measurement {
    threads: usize,
    induce_ms: f64,
    trials_ms: f64,
    best: BestOfTrials,
    instance: SweepInstance,
    stats_fingerprint: Vec<(usize, usize, usize)>,
}

fn measure(
    args: &BenchArgs,
    mesh: &sweep_mesh::TetMesh,
    quad: &QuadratureSet,
    threads: usize,
) -> Measurement {
    sweep_pool::set_global_threads(threads);
    let t0 = Instant::now();
    let (dags, stats) = induce_all(mesh, quad);
    let induce_ms = t0.elapsed().as_secs_f64() * 1e3;
    let instance = SweepInstance::new(mesh.num_cells(), dags, "par_speedup");
    let assignment = Assignment::random_cells(instance.num_cells(), PROCS, args.seed);
    let t1 = Instant::now();
    let best = best_of_trials(
        &instance,
        &assignment,
        Algorithm::RandomDelayPriorities,
        TRIALS,
        args.seed,
    );
    let trials_ms = t1.elapsed().as_secs_f64() * 1e3;
    Measurement {
        threads,
        induce_ms,
        trials_ms,
        best,
        instance,
        stats_fingerprint: stats
            .iter()
            .map(|s| (s.raw_edges, s.dropped_edges, s.nontrivial_sccs))
            .collect(),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mesh = args.mesh(MeshPreset::Tetonly);
    let quad = QuadratureSet::level_symmetric(4).expect("S4 quadrature");
    let host = sweep_pool::available_threads();

    let mut sink = CsvSink::new(
        &args,
        "par_speedup",
        "threads,induce_ms,trials_ms,total_ms,speedup,identical",
    );

    let reference = measure(&args, &mesh, &quad, 1);
    let seq_total = reference.induce_ms + reference.trials_ms;

    let mut rows = Vec::new();
    let mut all_identical = true;
    for &threads in &[1usize, 2, 4, 8] {
        let m = if threads == 1 {
            // Re-measure so width 1 pays the same cache-warm conditions
            // as the other widths instead of the cold first run.
            measure(&args, &mesh, &quad, 1)
        } else {
            measure(&args, &mesh, &quad, threads)
        };
        let identical = m.instance.dags() == reference.instance.dags()
            && m.stats_fingerprint == reference.stats_fingerprint
            && m.best.trial == reference.best.trial
            && m.best.seed == reference.best.seed
            && m.best.outcomes == reference.best.outcomes
            && m.best.schedule.starts() == reference.best.schedule.starts();
        all_identical &= identical;
        let total = m.induce_ms + m.trials_ms;
        let speedup = seq_total / total;
        sink.row(format_args!(
            "{},{:.2},{:.2},{:.2},{:.3},{}",
            m.threads, m.induce_ms, m.trials_ms, total, speedup, identical
        ));
        rows.push((
            m.threads,
            m.induce_ms,
            m.trials_ms,
            total,
            speedup,
            identical,
        ));
    }
    sink.finish();
    sweep_pool::set_global_threads(0);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"par_speedup\",");
    let _ = writeln!(json, "  \"preset\": \"tetonly\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"directions\": {},", quad.len());
    let _ = writeln!(json, "  \"cells\": {},", mesh.num_cells());
    let _ = writeln!(json, "  \"trials\": {TRIALS},");
    let _ = writeln!(json, "  \"procs\": {PROCS},");
    let _ = writeln!(json, "  \"host_available_parallelism\": {host},");
    let _ = writeln!(
        json,
        "  \"note\": \"speedup is relative to the forced sequential path (threads=1); wall-clock gains are bounded by host_available_parallelism — on a single-core host all widths measure ~1x while outputs stay bit-identical\","
    );
    let _ = writeln!(json, "  \"sequential_total_ms\": {seq_total:.2},");
    json.push_str("  \"widths\": [\n");
    for (i, (threads, induce_ms, trials_ms, total, speedup, identical)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"induce_ms\": {induce_ms:.2}, \"trials_ms\": {trials_ms:.2}, \"total_ms\": {total:.2}, \"speedup\": {speedup:.3}, \"identical\": {identical}}}{comma}"
        );
    }
    json.push_str("  ]\n}\n");
    let path = args.out.join("BENCH_par.json");
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: cannot create {}: {e}", args.out.display());
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    if !all_identical {
        eprintln!("ERROR: some worker count produced non-identical outputs");
        std::process::exit(1);
    }
}
