//! **Extension: non-uniform cell costs** — the paper assumes unit task
//! cost `p = 1`; production meshes are graded, so per-cell work varies.
//! This experiment draws lognormal-ish cell weights, schedules with the
//! weighted Algorithm 2, and compares three assignment policies:
//! per-cell random, unweighted blocks, and *weight-balanced* blocks
//! (the multilevel partitioner balancing total block weight rather than
//! cell count) — showing the provable-algorithm machinery extends
//! naturally beyond the paper's model.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin weighted_cells -- --scale 0.05
//! ```

use rand::{RngExt, SeedableRng};
use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{
    validate_weighted, weighted_lower_bound, weighted_random_delay_priorities, Assignment,
};
use sweep_mesh::{MeshPreset, SweepMesh};
use sweep_partition::{block_partition, CsrGraph, PartitionOptions};

fn main() {
    let args = BenchArgs::parse();
    let (mesh, instance) = args.instance(MeshPreset::Tetonly, 4);
    let n = instance.num_cells();

    // Lognormal-ish weights in 1..=32: most cells cheap, a tail of
    // expensive ones (local refinement / material interfaces).
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let weights: Vec<u64> = (0..n)
        .map(|_| {
            let g: f64 = rng.random_range(0.0..1.0);
            ((32.0f64).powf(g * g) as u64).clamp(1, 32)
        })
        .collect();

    let (xadj, adjncy) = mesh.adjacency_csr();
    let mut graph = CsrGraph::from_csr_parts(xadj, adjncy);
    let block = args.scaled_block(64);
    let blocks_uniform = block_partition(&graph, block, &PartitionOptions::default());
    // Weight-balanced blocks: same partitioner and *the same number of
    // blocks*, but with cell weights as vertex weights so blocks carry
    // equal total work instead of equal cell counts.
    graph.vwgt = weights.iter().map(|&w| w as u32).collect();
    let nblocks = n.div_ceil(block).max(1);
    let blocks_weighted = sweep_partition::partition(&graph, nblocks, &PartitionOptions::default());

    let mut sink = CsvSink::new(
        &args,
        "weighted_cells",
        "m,policy,makespan,weighted_lb,ratio",
    );
    for m in [8usize, 32, 128] {
        if m * 4 > instance.num_tasks() {
            continue;
        }
        let lb = weighted_lower_bound(&instance, &weights, m);
        let policies: Vec<(&str, Assignment)> = vec![
            (
                "per_cell",
                Assignment::random_cells(n, m, args.seed ^ m as u64),
            ),
            (
                "blocks_uniform",
                Assignment::random_blocks(&blocks_uniform, m, args.seed ^ m as u64),
            ),
            (
                "blocks_weight_balanced",
                Assignment::random_blocks(&blocks_weighted, m, args.seed ^ m as u64),
            ),
            (
                "blocks_lpt",
                Assignment::lpt_blocks(&blocks_weighted, &weights, m),
            ),
        ];
        for (name, a) in policies {
            let s = weighted_random_delay_priorities(&instance, a, &weights, args.seed ^ 9);
            validate_weighted(&instance, &s, &weights).expect("feasible");
            sink.row(format_args!(
                "{m},{name},{mk},{lb},{ratio:.3}",
                mk = s.makespan,
                ratio = s.makespan as f64 / lb as f64,
            ));
        }
    }
    sink.finish();
}
