//! **Worst-case family** — the separation motivating the paper's §2: on
//! non-mesh-like instances, heuristics without random delays can be a
//! factor Θ(k) (here: up to Ω(m)-like) away from optimal, while the
//! random-delay algorithms stay close. Instances: identical chains (all
//! directions share one chain) and the bottleneck family.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin adversarial -- --scale 0.05
//! ```

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{
    lower_bounds, random_delay_priorities_with, random_delay_with, random_delays, validate,
    Algorithm, Assignment,
};
use sweep_dag::SweepInstance;

fn main() {
    let args = BenchArgs::parse();
    // Sizes grow with --scale but stay test-friendly.
    let n = ((2000.0 * args.scale) as usize).max(50);
    let k = 24usize;
    let m = 32usize;
    let mut sink = CsvSink::new(
        &args,
        "adversarial",
        "instance,algorithm,makespan,lower_bound,ratio",
    );
    let instances: Vec<SweepInstance> = vec![
        SweepInstance::identical_chains(n, k),
        SweepInstance::bottleneck((m / 2).max(2), (n / 20).max(2), k),
        SweepInstance::random_chains(n, k.min(8), args.seed),
    ];
    for inst in &instances {
        let lb = lower_bounds(inst, m).best();
        let a = Assignment::random_cells(inst.num_cells(), m, args.seed);
        let delays = random_delays(inst.num_directions(), args.seed ^ 0xad);
        let zero = vec![0u32; inst.num_directions()];

        let runs: Vec<(String, sweep_core::Schedule)> = vec![
            (
                "layered_no_delays".into(),
                random_delay_with(inst, a.clone(), &zero),
            ),
            (
                "layered_random_delays".into(),
                random_delay_with(inst, a.clone(), &delays),
            ),
            (
                "rdp".into(),
                random_delay_priorities_with(inst, a.clone(), &delays),
            ),
            (
                Algorithm::Greedy.name(),
                Algorithm::Greedy.run(inst, a.clone(), args.seed),
            ),
            (
                Algorithm::Dfds { delays: false }.name(),
                Algorithm::Dfds { delays: false }.run(inst, a.clone(), args.seed),
            ),
        ];
        for (name, s) in runs {
            validate(inst, &s).expect("feasible");
            sink.row(format_args!(
                "{inst_name},{name},{mk},{lb},{ratio:.2}",
                inst_name = inst.name(),
                mk = s.makespan(),
                ratio = s.makespan() as f64 / lb as f64,
            ));
        }
    }
    sink.finish();
}
