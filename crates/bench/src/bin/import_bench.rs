//! Ingestion-path benchmark (ISSUE 10): parse + assemble, DAG
//! induction, and a greedy schedule on each example mesh under
//! `examples/meshes/`.
//!
//! The interesting questions are (a) where the import time goes —
//! text parsing vs face-adjacency assembly vs induction — and (b) what
//! the cycle-rich `warped.msh` costs relative to its clean peers, since
//! its rings exercise the Tarjan repair path in every direction.
//! Results land in `<out>/import_bench.csv`; makespans are what the
//! EXPERIMENTS "Imported meshes" section reports. Timings are
//! min-of-`REPEATS`, counts are deterministic.

use std::time::Instant;

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{greedy_schedule, Assignment};
use sweep_dag::SweepInstance;
use sweep_mesh::import::{import_bytes, ImportFormat};
use sweep_quadrature::QuadratureSet;

/// Timed repetitions; the fastest is reported (the example meshes are
/// small enough that one-shot timings are dominated by noise).
const REPEATS: usize = 5;
/// Processors for the greedy schedule.
const PROCS: usize = 4;

fn min_ms<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("REPEATS > 0"), best)
}

fn main() {
    let args = BenchArgs::parse();
    let quad = QuadratureSet::level_symmetric(2).expect("S2 quadrature");
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/meshes");

    let mut sink = CsvSink::new(
        &args,
        "import_bench",
        "mesh,bytes,cells,tasks,edges,cyclic_dirs,dropped_edges,import_ms,induce_ms,schedule_ms,makespan",
    );

    for name in ["cube.msh", "plate.obj", "warped.msh"] {
        let path = format!("{dir}/{name}");
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(1);
        });
        let (got, import_ms) = min_ms(|| {
            import_bytes(&bytes, ImportFormat::Auto).unwrap_or_else(|e| {
                eprintln!("importing {path}: {e}");
                std::process::exit(1);
            })
        });
        let ((inst, stats), induce_ms) =
            min_ms(|| SweepInstance::from_mesh(&got.mesh, &quad, name));
        let cyclic_dirs = stats.iter().filter(|s| s.nontrivial_sccs > 0).count();
        let dropped: usize = stats.iter().map(|s| s.dropped_edges).sum();
        let edges: usize = inst.dags().iter().map(|d| d.num_edges()).sum();
        let assignment = Assignment::random_cells(inst.num_cells(), PROCS, args.seed);
        let (schedule, schedule_ms) = min_ms(|| greedy_schedule(&inst, assignment.clone()));
        sink.row(format_args!(
            "{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{}",
            name,
            bytes.len(),
            inst.num_cells(),
            inst.num_tasks(),
            edges,
            cyclic_dirs,
            dropped,
            import_ms,
            induce_ms,
            schedule_ms,
            schedule.makespan()
        ));
    }
    sink.finish();
}
