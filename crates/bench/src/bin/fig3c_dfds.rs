//! **Figure 3(c)** — DFDS priorities (Pautz) without and with random
//! delays, versus Random Delays with Priorities, on the `well_logging`
//! mesh with block partitioning (paper block size 128).
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin fig3c_dfds -- --scale 0.05
//! ```

use sweep_bench::{run_fig3, BenchArgs};
use sweep_core::PriorityScheme;
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    run_fig3(
        &args,
        MeshPreset::WellLogging,
        128,
        PriorityScheme::Dfds,
        "fig3c_dfds",
    );
}
