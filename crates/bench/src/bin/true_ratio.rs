//! **Extension: true approximation ratios** — the paper normalizes its
//! plots by the proxy lower bound `max{nk/m, k, D}` because OPT is
//! unknown; on tiny instances we can compute OPT exactly (branch and
//! bound over both assignment and schedule, `sweep-core::opt`) and report
//! the *actual* approximation ratio of each algorithm, plus how tight the
//! proxy bound is.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin true_ratio
//! ```

use sweep_bench::{geometric_mean, BenchArgs, CsvSink};
use sweep_core::{lower_bounds, optimal_sweep_makespan, validate, Algorithm, Assignment};
use sweep_dag::SweepInstance;

fn main() {
    let args = BenchArgs::parse();
    let mut sink = CsvSink::new(
        &args,
        "true_ratio",
        "instance,seed,m,opt,proxy_lb,tightness,algorithm,makespan,true_ratio,proxy_ratio",
    );
    let algos = [
        Algorithm::RandomDelay,
        Algorithm::RandomDelayPriorities,
        Algorithm::Greedy,
        Algorithm::Dfds { delays: false },
    ];
    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
    let mut tightness = Vec::new();
    for seed in 0..12u64 {
        let inst = SweepInstance::random_layered(7, 3, 3, 2, args.seed ^ seed);
        let m = 3;
        let opt = optimal_sweep_makespan(&inst, m);
        let proxy = lower_bounds(&inst, m).best() as u32;
        tightness.push(opt as f64 / proxy as f64);
        for (ai, alg) in algos.iter().enumerate() {
            let a = Assignment::random_cells(inst.num_cells(), m, seed ^ 0x11);
            let s = alg.run(&inst, a, seed ^ 0x22);
            validate(&inst, &s).expect("feasible");
            let tr = s.makespan() as f64 / opt as f64;
            per_algo[ai].push(tr);
            sink.row(format_args!(
                "layered7x3,{seed},{m},{opt},{proxy},{t:.3},{name},{mk},{tr:.3},{pr:.3}",
                t = opt as f64 / proxy as f64,
                name = alg.name(),
                mk = s.makespan(),
                pr = s.makespan() as f64 / proxy as f64,
            ));
        }
    }
    eprintln!(
        "# proxy-bound tightness OPT/lb: geo-mean {:.3} (1.0 = proxy exact)",
        geometric_mean(&tightness)
    );
    for (ai, alg) in algos.iter().enumerate() {
        eprintln!(
            "# {:<22} geo-mean true ratio {:.3}",
            alg.name(),
            geometric_mean(&per_algo[ai])
        );
    }
    sink.finish();
}
