//! **Figure 2(c)** — "Random Delays" (Algorithm 1) versus "Random Delays
//! with Priorities" (Algorithm 2) on the `long` mesh, across direction
//! counts (S2/S4/S6 → 8/24/48) and processor counts. The paper observes
//! the priority variant winning by up to 4× at high processor counts.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin fig2c_priorities -- --scale 0.05
//! ```

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{
    lower_bounds, random_delay_priorities_with, random_delay_with, random_delays, validate,
    Assignment,
};
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    let mut sink = CsvSink::new(
        &args,
        "fig2c_priorities",
        "directions,m,makespan_rd,makespan_rdp,lower_bound,ratio_rd,ratio_rdp,improvement",
    );
    for sn in [2usize, 4, 6, 8] {
        let (_, instance) = args.instance(MeshPreset::Long, sn);
        let k = instance.num_directions();
        let n = instance.num_cells();
        let ms = args.proc_sweep(512, instance.num_tasks());
        for &m in &ms {
            let delays = random_delays(k, args.seed ^ (m as u64) << 8 | sn as u64);
            let a = Assignment::random_cells(n, m, args.seed ^ m as u64);
            let s_rd = random_delay_with(&instance, a.clone(), &delays);
            let s_rdp = random_delay_priorities_with(&instance, a, &delays);
            validate(&instance, &s_rd).expect("rd feasible");
            validate(&instance, &s_rdp).expect("rdp feasible");
            let lb = lower_bounds(&instance, m).paper();
            sink.row(format_args!(
                "{k},{m},{rd},{rdp},{lb},{r1:.3},{r2:.3},{imp:.2}",
                rd = s_rd.makespan(),
                rdp = s_rdp.makespan(),
                r1 = s_rd.makespan() as f64 / lb as f64,
                r2 = s_rdp.makespan() as f64 / lb as f64,
                imp = s_rd.makespan() as f64 / s_rdp.makespan() as f64,
            ));
        }
    }
    sink.finish();
}
