//! **Extension: does schedule quality survive asynchrony?** — the paper
//! (and this repository's schedulers) evaluate under a synchronous global
//! clock; a real cluster runs each processor on local information with
//! message latency. This experiment replays the same priorities through
//! the asynchronous event-driven simulator of `sweep-sim::async_exec`
//! and reports the async/sync makespan gap across latencies and
//! assignment policies.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin async_gap -- --scale 0.05
//! ```

use sweep_bench::{mesh_blocks, BenchArgs, CsvSink};
use sweep_core::{delayed_level_priorities, list_schedule, random_delays, validate, Assignment};
use sweep_mesh::MeshPreset;
use sweep_sim::async_makespan;

fn main() {
    let args = BenchArgs::parse();
    let (mesh, instance) = args.instance(MeshPreset::Tetonly, 4);
    let n = instance.num_cells();
    let m = 64.min(instance.num_tasks() / 8).max(2);
    let delays = random_delays(instance.num_directions(), args.seed);
    let prio = delayed_level_priorities(&instance, &delays);
    let blocks = mesh_blocks(&mesh, args.scaled_block(64));

    let mut sink = CsvSink::new(
        &args,
        "async_gap",
        "assignment,latency,sync_makespan,async_makespan,gap,utilization",
    );
    for (label, assignment) in [
        ("per_cell", Assignment::random_cells(n, m, args.seed)),
        ("block64", Assignment::random_blocks(&blocks, m, args.seed)),
    ] {
        let sync = list_schedule(&instance, assignment.clone(), &prio, None);
        validate(&instance, &sync).expect("feasible");
        for &lat in &[0.0, 0.25, 1.0, 4.0] {
            let r = async_makespan(&instance, &assignment, &prio, None, lat);
            sink.row(format_args!(
                "{label},{lat},{sm},{am:.0},{gap:.3},{util:.3}",
                sm = sync.makespan(),
                am = r.makespan,
                gap = r.makespan / sync.makespan() as f64,
                util = r.utilization,
            ));
        }
    }
    sink.finish();
}
