//! **Lemmas 2 & 3, empirically** — measures the per-layer congestion
//! quantities the analysis bounds: the maximum number of copies of one
//! cell in a combined layer (Lemma 2: `O(log n)` w.h.p.) and the maximum
//! number of one layer's tasks on one processor (Lemma 3:
//! `O(max{|V_r|/m, 1}·log² n)` w.h.p.), and compares them against the
//! Chernoff envelopes of Lemma 1.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin lemma_congestion -- --scale 0.05
//! ```

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{chernoff_f, layer_congestion, random_delays, Assignment};
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    let mut sink = CsvSink::new(
        &args,
        "lemma_congestion",
        "mesh,k,m,trial,max_copies,log_n,max_proc_load,width_over_m_log2n,f_envelope",
    );
    for preset in [MeshPreset::Tetonly, MeshPreset::Long] {
        let (_, instance) = args.instance(preset, 4);
        let n = instance.num_cells();
        let k = instance.num_directions();
        let log_n = (n as f64).ln();
        for m in [16usize, 64] {
            for trial in 0..5u64 {
                let seed = args.seed ^ (trial << 8) ^ m as u64;
                let a = Assignment::random_cells(n, m, seed);
                let d = random_delays(k, seed ^ 0xc0ffee);
                let st = layer_congestion(&instance, &a, &d);
                // Lemma 3 envelope: max{width/m, 1} · log² n.
                let env3 = (st.max_layer_width as f64 / m as f64).max(1.0) * log_n * log_n;
                // Lemma 1(b) threshold for mean 1, failure prob 1/n².
                let f = chernoff_f(1.0, 1.0 / (n as f64 * n as f64), 1.0);
                sink.row(format_args!(
                    "{name},{k},{m},{trial},{copies},{log_n:.2},{load},{env3:.1},{f:.2}",
                    name = preset.name(),
                    copies = st.max_copies_per_cell_layer,
                    load = st.max_tasks_per_proc_layer,
                ));
                assert!(
                    (st.max_copies_per_cell_layer as f64) <= 3.0 * log_n + 3.0,
                    "Lemma 2 violated empirically: {} copies vs ln n = {log_n:.1}",
                    st.max_copies_per_cell_layer
                );
                assert!(
                    (st.max_tasks_per_proc_layer as f64) <= env3,
                    "Lemma 3 violated empirically: {} vs {env3:.1}",
                    st.max_tasks_per_proc_layer
                );
            }
        }
    }
    eprintln!("# all trials within the Lemma 2/3 envelopes");
    sink.finish();
}
