//! Deterministic generator for `examples/meshes/warped.msh` — the
//! cycle-rich hanging-node example mesh (ISSUE 10).
//!
//! The mesh is four "spiral-cut" rings of sheared hexahedra (each hex
//! split into six Kuhn tetrahedra, so every shared quad conforms), one
//! ring per diagonal-axis class of the S2 level-symmetric quadrature,
//! plus one T-junction cluster whose three fine tets hang on a coarse
//! face. Each ring's inter-sector cut faces are tilted azimuthally by
//! `TILT`, so every cut normal gains a consistent component along the
//! ring axis: for a sweep direction on that axis every cut is crossed
//! "downstream", closing a directed cycle around the ring. Cycle
//! reversal covers the opposite direction, and the four axis classes
//! (±1, ±1, ±1)/√3 cover all eight S2 directions.
//!
//! Usage: `warped_gen [--check] [PATH]` — writes the `.msh` to PATH (or
//! stdout), `--check` additionally imports it back and asserts at least
//! one induced cycle per S2 direction plus resolved hanging nodes,
//! exiting nonzero otherwise. Output is byte-deterministic: no
//! timestamps, no randomness.

use std::fmt::Write as _;

type V3 = [f64; 3];

/// Sectors per ring (even keeps the sector count symmetric; 6 is the
/// smallest that verified cyclic for every on-axis direction).
const SECTORS: usize = 6;
/// Azimuthal offset (radians) between the bottom and top ends of each
/// inter-sector cut — the shear that tilts cut normals off the axis.
const TILT: f64 = 0.55;
/// Inner/outer ring radii and half-height.
const R0: f64 = 0.6;
const R1: f64 = 1.5;
const HALF_H: f64 = 0.55;

fn add(a: V3, b: V3) -> V3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: V3, s: f64) -> V3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

fn cross(a: V3, b: V3) -> V3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(a: V3) -> V3 {
    let l = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
    scale(a, 1.0 / l)
}

/// Orthonormal frame (u, v, w) with w along `axis`.
fn frame(axis: V3) -> (V3, V3, V3) {
    let w = norm(axis);
    let pick = if w[0].abs() < 0.9 {
        [1.0, 0.0, 0.0]
    } else {
        [0.0, 1.0, 0.0]
    };
    let u = norm(cross(pick, w));
    let v = cross(w, u);
    (u, v, w)
}

struct MeshBuf {
    vertices: Vec<V3>,
    tets: Vec<[usize; 4]>,
}

impl MeshBuf {
    fn push_tet(&mut self, mut t: [usize; 4]) {
        // Keep every element positively oriented so the import report
        // carries no SW031 warnings.
        let [a, b, c, d] = t.map(|i| self.vertices[i]);
        let e1 = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let e2 = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
        let e3 = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
        let vol = cross(e1, e2)[0] * e3[0] + cross(e1, e2)[1] * e3[1] + cross(e1, e2)[2] * e3[2];
        if vol < 0.0 {
            t.swap(2, 3);
        }
        self.tets.push(t);
    }
}

/// One spiral-cut ring around `axis`, centered at `center`. Sector cut
/// `i` lives at angle `2πi/SECTORS`, twisted by `±TILT/2` at its bottom
/// and top ends; the four cut corners are shared verbatim by the two
/// neighbouring sector hexes, so the whole ring is conforming.
fn push_ring(buf: &mut MeshBuf, center: V3, axis: V3) {
    let (u, v, w) = frame(axis);
    let base = buf.vertices.len();
    // Cut vertices: index (i, zeta, rho) -> 4 per cut.
    for i in 0..SECTORS {
        let theta = std::f64::consts::TAU * i as f64 / SECTORS as f64;
        for zeta in 0..2 {
            let phi = theta + TILT * (zeta as f64 - 0.5);
            let z = HALF_H * (2.0 * zeta as f64 - 1.0);
            for rho in 0..2 {
                let r = if rho == 0 { R0 } else { R1 };
                let p = add(
                    center,
                    add(
                        add(scale(u, r * phi.cos()), scale(v, r * phi.sin())),
                        scale(w, z),
                    ),
                );
                buf.vertices.push(p);
            }
        }
    }
    let vid = |i: usize, zeta: usize, rho: usize| base + 4 * (i % SECTORS) + 2 * zeta + rho;
    // Hex i spans cuts i and i+1; corner bits (rho, zeta, alpha).
    const KUHN: [[usize; 4]; 6] = [
        [0, 1, 3, 7],
        [0, 1, 5, 7],
        [0, 2, 3, 7],
        [0, 2, 6, 7],
        [0, 4, 5, 7],
        [0, 4, 6, 7],
    ];
    for i in 0..SECTORS {
        let corner = |c: usize| vid(i + (c >> 2), (c >> 1) & 1, c & 1);
        for tet in KUHN {
            buf.push_tet(tet.map(corner));
        }
    }
}

/// The hanging-node T-junction: a coarse tet whose top face carries a
/// centroid hanging node shared by three fine tets above it.
fn push_hanging_cluster(buf: &mut MeshBuf, center: V3) {
    let base = buf.vertices.len();
    let local: [V3; 6] = [
        [0.0, 0.0, 0.0],
        [1.2, 0.0, 0.0],
        [0.4, 1.1, 0.0],
        [0.5, 0.35, -0.9],                             // coarse apex below
        [0.5333333333333333, 0.3666666666666667, 0.0], // hanging node at face centroid
        [0.5, 0.35, 0.8],                              // fine apex above
    ];
    for p in local {
        buf.vertices.push(add(center, p));
    }
    buf.push_tet([base, base + 1, base + 2, base + 3]);
    buf.push_tet([base, base + 1, base + 4, base + 5]);
    buf.push_tet([base + 1, base + 2, base + 4, base + 5]);
    buf.push_tet([base + 2, base, base + 4, base + 5]);
}

fn render_msh(buf: &MeshBuf) -> String {
    let mut out = String::new();
    out.push_str("$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n");
    let n = buf.vertices.len();
    let _ = writeln!(out, "1 {n} 1 {n}\n3 1 0 {n}");
    for tag in 1..=n {
        let _ = writeln!(out, "{tag}");
    }
    for p in &buf.vertices {
        let _ = writeln!(out, "{:.12} {:.12} {:.12}", p[0], p[1], p[2]);
    }
    let e = buf.tets.len();
    let _ = writeln!(out, "$EndNodes\n$Elements\n1 {e} 1 {e}\n3 1 4 {e}");
    for (i, t) in buf.tets.iter().enumerate() {
        let _ = writeln!(
            out,
            "{} {} {} {} {}",
            i + 1,
            t[0] + 1,
            t[1] + 1,
            t[2] + 1,
            t[3] + 1
        );
    }
    out.push_str("$EndElements\n");
    out
}

fn build() -> String {
    let mut buf = MeshBuf {
        vertices: Vec::new(),
        tets: Vec::new(),
    };
    let s = 1.0 / 3.0_f64.sqrt();
    let axes: [V3; 4] = [[s, s, s], [s, s, -s], [s, -s, s], [s, -s, -s]];
    for (j, axis) in axes.iter().enumerate() {
        push_ring(&mut buf, [4.0 * j as f64, 0.0, 0.0], *axis);
    }
    push_hanging_cluster(&mut buf, [16.0, 0.0, 0.0]);
    render_msh(&buf)
}

fn check(text: &str) -> Result<String, String> {
    let got = sweep_mesh::import_bytes(text.as_bytes(), sweep_mesh::ImportFormat::Msh)
        .map_err(|e| format!("self-check import failed: {e}"))?;
    if got.report.has_errors() {
        return Err("self-check: import report has errors".to_string());
    }
    if got.report.hanging_resolved == 0 {
        return Err("self-check: no hanging nodes were stitched".to_string());
    }
    let quad = sweep_quadrature::QuadratureSet::level_symmetric(2).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, (_, omega)) in quad.iter().enumerate() {
        let (dag, stats) = sweep_dag::induce_dag(&got.mesh, omega);
        let _ = writeln!(
            out,
            "dir {i} ({:+.3} {:+.3} {:+.3}): {} raw edges, {} nontrivial SCCs, {} dropped, acyclic {}",
            omega.x, omega.y, omega.z, stats.raw_edges, stats.nontrivial_sccs,
            stats.dropped_edges, dag.is_acyclic()
        );
        if stats.nontrivial_sccs == 0 || stats.dropped_edges == 0 {
            return Err(format!("self-check: direction {i} induced no cycle\n{out}"));
        }
        if !dag.is_acyclic() {
            return Err(format!("self-check: direction {i} not repaired\n{out}"));
        }
    }
    let _ = writeln!(
        out,
        "ok: {} cells, {} hanging stitches, cycles in all {} directions",
        got.report.cells,
        got.report.hanging_resolved,
        quad.len()
    );
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let do_check = args.iter().any(|a| a == "--check");
    let path = args.iter().find(|a| !a.starts_with("--"));
    let text = build();
    if do_check {
        match check(&text) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &text) {
                eprintln!("writing {p}: {e}");
                std::process::exit(1);
            }
            println!("wrote {p} ({} bytes)", text.len());
        }
        None if !do_check => print!("{text}"),
        None => {}
    }
}
