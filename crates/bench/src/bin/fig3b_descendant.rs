//! **Figure 3(b)** — Descendant priorities (Plimpton et al.) without and
//! with random delays, versus Random Delays with Priorities, on the
//! `tetonly` mesh with block partitioning (paper block size 256).
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin fig3b_descendant -- --scale 0.05
//! ```

use sweep_bench::{run_fig3, BenchArgs};
use sweep_core::PriorityScheme;
use sweep_dag::DescendantMode;
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    run_fig3(
        &args,
        MeshPreset::Tetonly,
        256,
        PriorityScheme::Descendant(DescendantMode::Approximate),
        "fig3b_descendant",
    );
}
