//! **Extension: KBA on regular meshes** — the paper's related work notes
//! that "when the mesh is very regular, the KBA algorithm \[6\] is known to
//! be essentially optimal". This experiment builds a *structured*
//! (zero-jitter) mesh, runs the classical KBA columnar assignment with a
//! wavefront (level-priority) schedule, and compares makespan and C1
//! against the random-delay algorithms — quantifying what the provable
//! algorithms give up (communication) and gain (generality) on KBA's home
//! turf.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin kba_regular -- --scale 0.2
//! ```

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{
    c1_interprocessor_edges, kba_assignment, lower_bounds, random_delay_priorities,
    schedule_with_priorities, validate, Assignment, PriorityScheme,
};
use sweep_dag::SweepInstance;
use sweep_mesh::{generate, GeneratorConfig, SweepMesh};
use sweep_quadrature::QuadratureSet;

fn main() {
    let args = BenchArgs::parse();
    // Structured cube sized from --scale: side ~ (scale * 31481/12)^(1/3).
    let side = (((args.scale * 31481.0) / 12.0).cbrt().round() as usize).max(4);
    let mut cfg = GeneratorConfig::cube(side, args.seed);
    cfg.jitter = 0.0;
    let mesh = generate(&cfg).expect("structured mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "structured");
    eprintln!(
        "# structured cube {side}^3 hexes: {} cells, {} tasks",
        mesh.num_cells(),
        instance.num_tasks()
    );

    let mut sink = CsvSink::new(
        &args,
        "kba_regular",
        "m,algorithm,makespan,ratio_lb,c1,cut_fraction",
    );
    let ms: Vec<usize> = args
        .proc_sweep(256, instance.num_tasks())
        .into_iter()
        .filter(|&m| m >= 4)
        .collect();
    for &m in &ms {
        let lb = lower_bounds(&instance, m).paper();
        let runs: Vec<(&str, sweep_core::Schedule)> = vec![
            (
                "kba_wavefront",
                schedule_with_priorities(
                    &instance,
                    kba_assignment(cfg.nx, cfg.ny, cfg.nz, mesh.num_cells(), m),
                    PriorityScheme::Level,
                    None,
                ),
            ),
            (
                "rdp_per_cell",
                random_delay_priorities(
                    &instance,
                    Assignment::random_cells(mesh.num_cells(), m, args.seed ^ m as u64),
                    args.seed,
                ),
            ),
            (
                "rdp_kba_assignment",
                random_delay_priorities(
                    &instance,
                    kba_assignment(cfg.nx, cfg.ny, cfg.nz, mesh.num_cells(), m),
                    args.seed,
                ),
            ),
        ];
        for (name, s) in runs {
            validate(&instance, &s).expect("feasible");
            let c1 = c1_interprocessor_edges(&instance, s.assignment());
            sink.row(format_args!(
                "{m},{name},{mk},{ratio:.3},{c1},{frac:.4}",
                mk = s.makespan(),
                ratio = s.makespan() as f64 / lb as f64,
                frac = c1 as f64 / instance.total_edges() as f64,
            ));
        }
    }
    sink.finish();
}
