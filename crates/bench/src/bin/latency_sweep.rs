//! **Extension: where does the real communication cost land?** — the
//! paper measures the extremes C1 and C2 and expects reality in between;
//! this experiment evaluates schedules under the overlap message-latency
//! model of `sweep-sim::latency` and locates the crossover where block
//! assignment overtakes per-cell assignment as the per-message latency
//! grows.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin latency_sweep -- --scale 0.05
//! ```

use sweep_bench::{mesh_blocks, BenchArgs, CsvSink};
use sweep_core::{random_delay_priorities, validate, Assignment};
use sweep_mesh::MeshPreset;
use sweep_sim::latency_makespan;

fn main() {
    let args = BenchArgs::parse();
    let (mesh, instance) = args.instance(MeshPreset::Tetonly, 4);
    let n = instance.num_cells();
    let m = 64.min(instance.num_tasks() / 8).max(2);
    let blocks = mesh_blocks(&mesh, args.scaled_block(256));

    let per_cell = Assignment::random_cells(n, m, args.seed);
    let per_block = Assignment::random_blocks(&blocks, m, args.seed);
    let s_cell = random_delay_priorities(&instance, per_cell, args.seed ^ 1);
    let s_block = random_delay_priorities(&instance, per_block, args.seed ^ 1);
    validate(&instance, &s_cell).expect("feasible");
    validate(&instance, &s_block).expect("feasible");

    let mut sink = CsvSink::new(
        &args,
        "latency_sweep",
        "latency,m,time_per_cell,time_per_block,msgs_per_cell,msgs_per_block,block_wins",
    );
    let mut crossover: Option<f64> = None;
    for &lat in &[0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let rc = latency_makespan(&instance, &s_cell, lat);
        let rb = latency_makespan(&instance, &s_block, lat);
        let wins = rb.makespan < rc.makespan;
        if wins && crossover.is_none() {
            crossover = Some(lat);
        }
        sink.row(format_args!(
            "{lat},{m},{tc:.0},{tb:.0},{mc},{mb},{wins}",
            tc = rc.makespan,
            tb = rb.makespan,
            mc = rc.messages,
            mb = rb.messages,
        ));
    }
    match crossover {
        Some(l) => eprintln!("# block assignment overtakes per-cell at latency ≈ {l}"),
        None => eprintln!("# per-cell assignment won at every tested latency"),
    }
    sink.finish();
}
