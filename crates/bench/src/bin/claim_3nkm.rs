//! **§2 observations 1 & 3** — on all four meshes, with varying processor
//! counts, the schedule produced by Random Delays with Priorities stays
//! below `3·nk/m` (near-linear speedup) and within a small constant of
//! the lower bound `max{nk/m, k, D}`.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin claim_3nkm -- --scale 0.05
//! ```

use sweep_bench::{geometric_mean, BenchArgs, CsvSink};
use sweep_core::{lower_bounds, random_delay_priorities, validate, Assignment};
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    let mut sink = CsvSink::new(
        &args,
        "claim_3nkm",
        "mesh,n,m,makespan,avg_load,ratio_avg_load,ratio_lb,within_3x,speedup",
    );
    let mut all_ratios = Vec::new();
    for preset in MeshPreset::ALL {
        let (_, instance) = args.instance(preset, 4); // 24 directions
        let n = instance.num_cells();
        let nk = instance.num_tasks() as f64;
        let ms = args.proc_sweep(512, instance.num_tasks());
        for &m in &ms {
            let a = Assignment::random_cells(n, m, args.seed ^ m as u64);
            let s = random_delay_priorities(&instance, a, args.seed ^ (m as u64) << 4);
            validate(&instance, &s).expect("feasible");
            let avg = nk / m as f64;
            let r_avg = s.makespan() as f64 / avg;
            let lb = lower_bounds(&instance, m).paper();
            let r_lb = s.makespan() as f64 / lb as f64;
            all_ratios.push(r_lb);
            sink.row(format_args!(
                "{name},{n},{m},{mk},{avg:.1},{r_avg:.3},{r_lb:.3},{ok},{sp:.1}",
                name = preset.name(),
                mk = s.makespan(),
                ok = r_avg <= 3.0,
                sp = nk / s.makespan() as f64,
            ));
        }
    }
    eprintln!(
        "# geometric-mean ratio to lower bound: {:.3} (paper: 'usually less than 3')",
        geometric_mean(&all_ratios)
    );
    sink.finish();
}
