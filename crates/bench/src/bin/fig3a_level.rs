//! **Figure 3(a)** — Level priorities versus Random Delays with
//! Priorities on the `long` mesh with block partitioning (paper block
//! size 64): the effect of random delays on top of level-prioritized
//! list scheduling, plotted as makespan / lower-bound.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin fig3a_level -- --scale 0.05
//! ```

use sweep_bench::{run_fig3, BenchArgs};
use sweep_core::PriorityScheme;
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    run_fig3(
        &args,
        MeshPreset::Long,
        64,
        PriorityScheme::Level,
        "fig3a_level",
    );
}
