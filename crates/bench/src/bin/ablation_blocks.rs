//! **Ablation: block size** — the §5.1 trade-off in one table: as block
//! size grows, the interprocessor edge count C1 falls while the makespan
//! rises slightly; the C2 measure responds much more weakly (the paper's
//! observation that C2 "does not seem to be affected significantly").
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin ablation_blocks -- --scale 0.05
//! ```

use sweep_bench::{mesh_blocks, BenchArgs, CsvSink};
use sweep_core::{
    c1_interprocessor_edges, c2_comm_delay, cut_fraction, lower_bounds, random_delay_priorities,
    validate, Assignment,
};
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    let (mesh, instance) = args.instance(MeshPreset::Tetonly, 4);
    let n = instance.num_cells();
    let m = 64.min(instance.num_tasks() / 8).max(2);
    let mut sink = CsvSink::new(
        &args,
        "ablation_blocks",
        "paper_block,effective_block,nblocks,m,makespan,ratio_lb,c1,cut_fraction,c2",
    );
    let lb = lower_bounds(&instance, m).paper();
    // paper_block = 1 is the per-cell assignment baseline.
    for paper_block in [1usize, 16, 64, 256, 1024] {
        let (eff, assignment) = if paper_block == 1 {
            (1, Assignment::random_cells(n, m, args.seed))
        } else {
            let eff = args.scaled_block(paper_block);
            let blocks = mesh_blocks(&mesh, eff);
            (eff, Assignment::random_blocks(&blocks, m, args.seed))
        };
        let nblocks = if paper_block == 1 { n } else { n.div_ceil(eff) };
        let s = random_delay_priorities(&instance, assignment, args.seed ^ 7);
        validate(&instance, &s).expect("feasible");
        sink.row(format_args!(
            "{paper_block},{eff},{nblocks},{m},{mk},{ratio:.3},{c1},{frac:.4},{c2}",
            mk = s.makespan(),
            ratio = s.makespan() as f64 / lb as f64,
            c1 = c1_interprocessor_edges(&instance, s.assignment()),
            frac = cut_fraction(&instance, s.assignment()),
            c2 = c2_comm_delay(&instance, &s),
        ));
    }
    sink.finish();
}
