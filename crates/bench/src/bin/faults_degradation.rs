//! **Extension: robustness of priority schemes under faults** — how does
//! the degraded makespan grow with the fault rate, and do the paper's
//! random-delay priorities stay ahead of the DFDS heuristic when
//! processors crash and messages drop?
//!
//! For each fault rate `r` a deterministic `FaultPlan` (crash rate `r`,
//! drop rate `r`, seeded) is injected into the async simulator for both
//! priority schemes on the same tetonly instance and assignment. Besides
//! the CSV, the run writes `BENCH_faults.json` with both degradation
//! series so the robustness trajectory is tracked across PRs.
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin faults_degradation -- --scale 0.05
//! ```

use std::fmt::Write as _;

use sweep_bench::{BenchArgs, CsvSink};
use sweep_core::{delayed_level_priorities, dfds_priorities, random_delays, Assignment};
use sweep_faults::FaultConfig;
use sweep_mesh::MeshPreset;
use sweep_sim::{degradation_curve, DegradationPoint};

const RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

fn main() {
    let args = BenchArgs::parse();
    let (_, instance) = args.instance(MeshPreset::Tetonly, 2);
    let n = instance.num_cells();
    let m = 8;
    let latency = 1.0;
    let assignment = Assignment::random_cells(n, m, args.seed);

    let rdp = delayed_level_priorities(
        &instance,
        &random_delays(instance.num_directions(), args.seed ^ 1),
    );
    let dfds = dfds_priorities(&instance, &assignment);

    let cfg = FaultConfig::default();
    let curve_rdp = degradation_curve(
        &instance,
        &assignment,
        &rdp,
        None,
        latency,
        &cfg,
        &RATES,
        args.seed,
    );
    let curve_dfds = degradation_curve(
        &instance,
        &assignment,
        &dfds,
        None,
        latency,
        &cfg,
        &RATES,
        args.seed,
    );

    let mut sink = CsvSink::new(
        &args,
        "faults_degradation",
        "rate,makespan_rdp,makespan_dfds,degradation_rdp,degradation_dfds,\
         retries_rdp,retries_dfds,recovered_rdp,recovered_dfds",
    );
    for (a, b) in curve_rdp.iter().zip(&curve_dfds) {
        sink.row(format_args!(
            "{},{},{},{:.4},{:.4},{},{},{},{}",
            a.rate,
            a.makespan,
            b.makespan,
            a.makespan / a.fault_free,
            b.makespan / b.fault_free,
            a.retries,
            b.retries,
            a.recovered_tasks,
            b.recovered_tasks,
        ));
    }
    let json = faults_json(&curve_rdp, &curve_dfds);
    let jpath = args.out.join("BENCH_faults.json");
    let _ = std::fs::create_dir_all(&args.out);
    match std::fs::write(&jpath, &json) {
        Ok(()) => eprintln!("# wrote {}", jpath.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", jpath.display()),
    }
    sink.finish();
}

/// Renders the two degradation series as the `BENCH_faults.json`
/// document (stable key order, one record per rate).
fn faults_json(rdp: &[DegradationPoint], dfds: &[DegradationPoint]) -> String {
    let series = |points: &[DegradationPoint]| {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"rate\": {}, \"makespan\": {}, \"fault_free\": {}, \
                     \"retries\": {}, \"recovered_tasks\": {}}}",
                    p.rate, p.makespan, p.fault_free, p.retries, p.recovered_tasks
                )
            })
            .collect();
        rows.join(",\n")
    };
    let mut out = String::from("{\n  \"experiment\": \"faults_degradation\",\n");
    let _ = writeln!(out, "  \"rdp\": [\n{}\n  ],", series(rdp));
    let _ = writeln!(out, "  \"dfds\": [\n{}\n  ]", series(dfds));
    out.push_str("}\n");
    out
}
