//! **Figure 2(a)+(b)** — Random Delay scheduling on the `tetonly` mesh
//! with 24 directions (S4): makespan, interprocessor edges C1, and
//! Max-Off-Proc-Outdegree cost C2 versus processor count, for per-cell
//! random assignment and for block assignments (paper block sizes 64 and
//! 256, scaled with `--scale`).
//!
//! ```sh
//! cargo run --release -p sweep-bench --bin fig2_random_delay -- --scale 0.05
//! ```

use sweep_bench::{mesh_blocks, AssignPolicy, BenchArgs, CsvSink};
use sweep_core::{
    c1_interprocessor_edges, c2_comm_delay, lower_bounds, random_delay_priorities, validate,
};
use sweep_mesh::MeshPreset;

fn main() {
    let args = BenchArgs::parse();
    let (mesh, instance) = args.instance(MeshPreset::Tetonly, 4); // S4 = 24 dirs
    let n = instance.num_cells();
    eprintln!(
        "# tetonly stand-in: {} cells, 24 directions, {} tasks",
        n,
        instance.num_tasks()
    );

    let block_sizes = [64usize, 256];
    let blocks: Vec<(usize, Vec<u32>)> = block_sizes
        .iter()
        .map(|&b| (b, mesh_blocks(&mesh, args.scaled_block(b))))
        .collect();

    let mut sink = CsvSink::new(
        &args,
        "fig2_random_delay",
        "assignment,block,m,makespan,lower_bound,ratio,c1,c2,cut_fraction",
    );
    let ms = args.proc_sweep(512, instance.num_tasks());
    for &m in &ms {
        let mut policies: Vec<(String, AssignPolicy)> =
            vec![("per_cell".into(), AssignPolicy::PerCell)];
        for (b, map) in &blocks {
            policies.push((format!("block{b}"), AssignPolicy::PerBlock(map)));
        }
        for (label, policy) in &policies {
            let a = policy.draw(n, m, args.seed ^ m as u64);
            let s = random_delay_priorities(&instance, a, args.seed.wrapping_add(m as u64));
            validate(&instance, &s).expect("feasible");
            let lb = lower_bounds(&instance, m).paper();
            let c1 = c1_interprocessor_edges(&instance, s.assignment());
            let c2 = c2_comm_delay(&instance, &s);
            sink.row(format_args!(
                "{label},{block},{m},{mk},{lb},{ratio:.3},{c1},{c2},{frac:.4}",
                label = label,
                block = if label.starts_with("block") {
                    label.trim_start_matches("block").to_string()
                } else {
                    "1".into()
                },
                m = m,
                mk = s.makespan(),
                lb = lb,
                ratio = s.makespan() as f64 / lb as f64,
                c1 = c1,
                c2 = c2,
                frac = c1 as f64 / instance.total_edges() as f64,
            ));
        }
    }
    sink.finish();
}
