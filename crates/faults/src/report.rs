//! The fault-aware engine's observation record: counters, a bounded
//! per-fault timeline, and text/JSON renderers.

use std::fmt::Write as _;

/// Maximum number of [`FaultEvent`]s a report keeps; later events are
/// counted in [`FaultReport::suppressed_events`] instead. Keeps the
/// JSON rendering (and the CI golden file diffed against it) bounded.
pub const MAX_TIMELINE: usize = 200;

/// What kind of fault (or recovery action) a timeline entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A processor died.
    Crash,
    /// A planned crash was skipped because it would have killed the
    /// last surviving processor.
    CrashSkipped,
    /// The dying processor's in-flight task was aborted (it re-runs on
    /// a survivor).
    Abort,
    /// A cell (all of its task copies) moved to a surviving processor.
    Reassign,
    /// A delivery attempt was dropped; the sender backs off and
    /// retries.
    Drop,
    /// A delivered message was redelivered; the receiver discarded the
    /// duplicate.
    Duplicate,
    /// A task started inside a straggler window and ran slowed.
    SlowTask,
    /// Flux inputs were refetched for a recovered task.
    Refetch,
}

impl FaultKind {
    /// Stable lower-snake name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::CrashSkipped => "crash_skipped",
            FaultKind::Abort => "abort",
            FaultKind::Reassign => "reassign",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::SlowTask => "slow_task",
            FaultKind::Refetch => "refetch",
        }
    }
}

/// One timeline entry: what happened, where, when.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulated time of the event.
    pub time: f64,
    /// The processor the event concerns.
    pub proc: u32,
    /// Event kind.
    pub kind: FaultKind,
    /// Deterministic human-readable detail.
    pub detail: String,
}

/// What a fault-injected execution observed, emitted by
/// `sweep_sim::async_makespan_faulty`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultReport {
    /// Completion time of the last task under faults (the *degraded*
    /// makespan).
    pub makespan: f64,
    /// The fault-free makespan of the same configuration, when the
    /// caller measured it (`0.0` otherwise); `sweep faults` fills it.
    pub fault_free_makespan: f64,
    /// Cross-processor data messages delivered (first successful
    /// attempt of each flux, plus recovery refetches).
    pub messages: u64,
    /// Retransmissions: dropped attempts that were retried, plus
    /// recovery refetches.
    pub retries: u64,
    /// Duplicate deliveries discarded by receivers.
    pub redeliveries: u64,
    /// Delivery attempts dropped by the lossy link or a partition.
    pub dropped: u64,
    /// Incomplete tasks re-enqueued on survivors after crashes.
    pub recovered_tasks: u64,
    /// Cells whose ownership moved to a survivor after a crash.
    pub reassigned_cells: u64,
    /// Tasks that executed inside a straggler window.
    pub slowed_tasks: u64,
    /// Processors that crashed, in crash order.
    pub crashed_procs: Vec<u32>,
    /// Per-processor busy time (aborted work counts what it burned).
    pub busy: Vec<f64>,
    /// `Σ busy / (m · makespan)`; `1.0` for an empty execution.
    pub utilization: f64,
    /// The first [`MAX_TIMELINE`] fault events, in simulation order.
    pub timeline: Vec<FaultEvent>,
    /// Timeline entries beyond the cap.
    pub suppressed_events: u64,
}

impl FaultReport {
    /// Records a timeline event, honouring the [`MAX_TIMELINE`] cap.
    pub fn record(&mut self, time: f64, proc: u32, kind: FaultKind, detail: String) {
        if self.timeline.len() < MAX_TIMELINE {
            self.timeline.push(FaultEvent {
                time,
                proc,
                kind,
                detail,
            });
        } else {
            self.suppressed_events += 1;
        }
    }

    /// Degradation factor `makespan / fault_free_makespan` (`NaN` until
    /// the caller fills the baseline).
    pub fn degradation(&self) -> f64 {
        self.makespan / self.fault_free_makespan
    }

    /// Human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "degraded makespan {:.3}{}",
            self.makespan,
            if self.fault_free_makespan > 0.0 {
                format!(
                    " (fault-free {:.3}, degradation {:.3}x)",
                    self.fault_free_makespan,
                    self.degradation()
                )
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "messages {}, retries {}, redeliveries {}, dropped {}",
            self.messages, self.retries, self.redeliveries, self.dropped
        );
        let _ = writeln!(
            out,
            "crashes {:?}, recovered tasks {}, reassigned cells {}, slowed tasks {}",
            self.crashed_procs, self.recovered_tasks, self.reassigned_cells, self.slowed_tasks
        );
        let _ = writeln!(out, "utilization {:.3}", self.utilization);
        let shown = self.timeline.len().min(12);
        for e in &self.timeline[..shown] {
            let _ = writeln!(
                out,
                "  t={:<10.3} proc {:<3} {:<13} {}",
                e.time,
                e.proc,
                e.kind.as_str(),
                e.detail
            );
        }
        let hidden = self.timeline.len() as u64 - shown as u64 + self.suppressed_events;
        if hidden > 0 {
            let _ = writeln!(out, "  ... {hidden} further fault events");
        }
        out
    }

    /// Stable machine-readable JSON (fixed key order; floats use Rust's
    /// shortest-round-trip formatting, which is platform-independent —
    /// CI diffs this against a committed golden file).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"makespan\": {},", f64j(self.makespan));
        let _ = writeln!(
            out,
            "  \"fault_free_makespan\": {},",
            f64j(self.fault_free_makespan)
        );
        let _ = writeln!(out, "  \"messages\": {},", self.messages);
        let _ = writeln!(out, "  \"retries\": {},", self.retries);
        let _ = writeln!(out, "  \"redeliveries\": {},", self.redeliveries);
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        let _ = writeln!(out, "  \"recovered_tasks\": {},", self.recovered_tasks);
        let _ = writeln!(out, "  \"reassigned_cells\": {},", self.reassigned_cells);
        let _ = writeln!(out, "  \"slowed_tasks\": {},", self.slowed_tasks);
        let procs: Vec<String> = self.crashed_procs.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "  \"crashed_procs\": [{}],", procs.join(", "));
        let busy: Vec<String> = self.busy.iter().map(|b| f64j(*b)).collect();
        let _ = writeln!(out, "  \"busy\": [{}],", busy.join(", "));
        let _ = writeln!(out, "  \"utilization\": {},", f64j(self.utilization));
        let _ = writeln!(out, "  \"suppressed_events\": {},", self.suppressed_events);
        out.push_str("  \"timeline\": [\n");
        for (i, e) in self.timeline.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"t\": {}, \"proc\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                f64j(e.time),
                e.proc,
                e.kind.as_str(),
                escape(&e.detail)
            );
            out.push_str(if i + 1 < self.timeline.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-safe float rendering: finite values use Rust's deterministic
/// shortest form; non-finite values (which a correct engine never
/// emits) become `null`.
fn f64j(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for the deterministic detail strings.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultReport {
        let mut r = FaultReport {
            makespan: 12.5,
            fault_free_makespan: 10.0,
            messages: 7,
            retries: 3,
            redeliveries: 1,
            dropped: 3,
            recovered_tasks: 4,
            reassigned_cells: 2,
            slowed_tasks: 0,
            crashed_procs: vec![1],
            busy: vec![5.0, 2.5],
            utilization: 0.3,
            ..FaultReport::default()
        };
        r.record(4.0, 1, FaultKind::Crash, "proc 1 crashed".to_string());
        r.record(4.0, 2, FaultKind::Reassign, "cell 3 -> proc 2".to_string());
        r
    }

    #[test]
    fn text_mentions_degradation_and_timeline() {
        let t = sample().render_text();
        assert!(t.contains("degraded makespan 12.500"));
        assert!(t.contains("degradation 1.250x"));
        assert!(t.contains("crash"));
        assert!(t.contains("cell 3 -> proc 2"));
    }

    #[test]
    fn json_is_stable_and_balanced() {
        let j = sample().render_json();
        assert_eq!(j, sample().render_json(), "deterministic rendering");
        assert!(j.contains("\"makespan\": 12.5"));
        assert!(j.contains("\"crashed_procs\": [1]"));
        assert!(j.contains("\"kind\": \"crash\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn timeline_caps_and_counts_suppressed() {
        let mut r = FaultReport::default();
        for i in 0..(MAX_TIMELINE + 25) {
            r.record(i as f64, 0, FaultKind::Drop, format!("drop {i}"));
        }
        assert_eq!(r.timeline.len(), MAX_TIMELINE);
        assert_eq!(r.suppressed_events, 25);
    }

    #[test]
    fn non_finite_floats_render_null() {
        let r = FaultReport {
            utilization: f64::NAN,
            ..FaultReport::default()
        };
        assert!(r.render_json().contains("\"utilization\": null"));
    }

    #[test]
    fn degradation_ratio() {
        assert!((sample().degradation() - 1.25).abs() < 1e-12);
    }
}
