//! Shared exponential-backoff arithmetic.
//!
//! Two consumers need the same retry discipline:
//!
//! * `sweep_sim::async_makespan_faulty` — the ack/timeout/retry
//!   protocol waits `rto · 2^attempt` before retransmitting a flux
//!   message (capped so a pathological plan still terminates);
//! * `sweep-serve` — an overloaded server answers `429` with a
//!   `Retry-After` hint drawn from the same curve, so clients back off
//!   at the rate the simulator's protocol was validated against.
//!
//! Keeping the arithmetic here means a change to the backoff policy is
//! one edit, and the fault-injection golden files in CI immediately
//! catch an unintended drift.

/// Default doubling cap: `rto · 2^6` is the longest single wait. With a
/// per-attempt failure probability `p < 1` the chance of ever reaching
/// the cap is negligible; it exists so `drop_rate = 1` still terminates.
pub const DEFAULT_BACKOFF_CAP: u32 = 6;

/// The capped exponential backoff delay for retry `attempt` (0-based):
/// `rto · 2^min(attempt, cap)`.
#[inline]
pub fn backoff_delay(rto: f64, attempt: u32, cap: u32) -> f64 {
    rto * (1u64 << attempt.min(cap)) as f64
}

/// [`backoff_delay`] with the default cap.
#[inline]
pub fn delay(rto: f64, attempt: u32) -> f64 {
    backoff_delay(rto, attempt, DEFAULT_BACKOFF_CAP)
}

/// The delay rounded up to whole seconds and clamped to at least 1 —
/// the shape an HTTP `Retry-After` header wants.
pub fn retry_after_secs(rto: f64, attempt: u32) -> u64 {
    delay(rto, attempt).ceil().max(1.0) as u64
}

/// Full-jitter backoff: a deterministic draw from
/// `[0, backoff_delay(rto, attempt, cap))`.
///
/// When a shard recovers after a crash, every peer that queued work
/// against it retries at once; pure exponential backoff keeps those
/// retries phase-locked and the recovering shard sees synchronized
/// bursts. Full jitter (the AWS "full jitter" policy) spreads each
/// retry uniformly over the capped exponential window, decorrelating
/// the storm while keeping the same worst-case wait.
///
/// The draw is a pure function of `(seed, attempt)` — a SplitMix64
/// hash, the same finalizer [`FaultPlan`](crate::FaultPlan) uses for
/// per-message decisions — so a retry schedule replays bit-identically
/// for a fixed seed. Callers that want per-peer decorrelation fold the
/// peer identity into the seed.
pub fn full_jitter_delay(rto: f64, attempt: u32, cap: u32, seed: u64) -> f64 {
    let ceiling = backoff_delay(rto, attempt, cap);
    ceiling * unit(seed, attempt)
}

/// [`full_jitter_delay`] with the default cap.
#[inline]
pub fn full_jitter(rto: f64, attempt: u32, seed: u64) -> f64 {
    full_jitter_delay(rto, attempt, DEFAULT_BACKOFF_CAP, seed)
}

/// A deterministic draw in `[0, 1)` from `(seed, attempt)`.
fn unit(seed: u64, attempt: u32) -> f64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xB0FF_0FF5;
    x = splitmix(x ^ attempt as u64);
    x = splitmix(x);
    // 53 high bits → [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finalizer: a well-mixed 64-bit permutation.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        assert_eq!(backoff_delay(1.5, 0, 6), 1.5);
        assert_eq!(backoff_delay(1.5, 1, 6), 3.0);
        assert_eq!(backoff_delay(1.5, 3, 6), 12.0);
        assert_eq!(backoff_delay(1.5, 6, 6), 96.0);
        // Capped: attempts past the cap wait the same.
        assert_eq!(backoff_delay(1.5, 7, 6), 96.0);
        assert_eq!(backoff_delay(1.5, 63, 6), 96.0);
    }

    #[test]
    fn retry_after_is_whole_positive_seconds() {
        assert_eq!(retry_after_secs(0.3, 0), 1);
        assert_eq!(retry_after_secs(1.5, 1), 3);
        assert_eq!(retry_after_secs(2.5, 2), 10);
    }

    /// The jittered sequence for a fixed seed is pinned: RPC retry
    /// schedules must replay bit-identically across runs and hosts.
    #[test]
    fn full_jitter_sequence_is_pinned_for_a_fixed_seed() {
        let got: Vec<String> = (0..5)
            .map(|attempt| format!("{:.9}", full_jitter(1.0, attempt, 2005)))
            .collect();
        assert_eq!(
            got,
            [
                "0.955252149",
                "1.607625607",
                "2.672428733",
                "2.323712742",
                "3.750372268",
            ]
        );
        let other: Vec<String> = (0..3)
            .map(|attempt| format!("{:.9}", full_jitter(1.0, attempt, 7)))
            .collect();
        assert_eq!(other, ["0.128918803", "0.821021320", "1.583423249"]);
    }

    #[test]
    fn full_jitter_stays_under_the_exponential_ceiling() {
        for seed in [0u64, 1, 42, 2005, u64::MAX] {
            for attempt in 0..20 {
                let d = full_jitter_delay(1.5, attempt, 6, seed);
                let ceiling = backoff_delay(1.5, attempt, 6);
                assert!(
                    (0.0..ceiling).contains(&d),
                    "seed {seed} attempt {attempt}: {d} not in [0, {ceiling})"
                );
                // Deterministic: same (seed, attempt) → same draw.
                assert_eq!(d, full_jitter_delay(1.5, attempt, 6, seed));
            }
        }
    }

    #[test]
    fn full_jitter_decorrelates_across_seeds() {
        // Two peers retrying the same attempt must not be phase-locked.
        let a = full_jitter(1.0, 3, 11);
        let b = full_jitter(1.0, 3, 12);
        assert_ne!(a, b);
    }
}
