//! Shared exponential-backoff arithmetic.
//!
//! Two consumers need the same retry discipline:
//!
//! * `sweep_sim::async_makespan_faulty` — the ack/timeout/retry
//!   protocol waits `rto · 2^attempt` before retransmitting a flux
//!   message (capped so a pathological plan still terminates);
//! * `sweep-serve` — an overloaded server answers `429` with a
//!   `Retry-After` hint drawn from the same curve, so clients back off
//!   at the rate the simulator's protocol was validated against.
//!
//! Keeping the arithmetic here means a change to the backoff policy is
//! one edit, and the fault-injection golden files in CI immediately
//! catch an unintended drift.

/// Default doubling cap: `rto · 2^6` is the longest single wait. With a
/// per-attempt failure probability `p < 1` the chance of ever reaching
/// the cap is negligible; it exists so `drop_rate = 1` still terminates.
pub const DEFAULT_BACKOFF_CAP: u32 = 6;

/// The capped exponential backoff delay for retry `attempt` (0-based):
/// `rto · 2^min(attempt, cap)`.
#[inline]
pub fn backoff_delay(rto: f64, attempt: u32, cap: u32) -> f64 {
    rto * (1u64 << attempt.min(cap)) as f64
}

/// [`backoff_delay`] with the default cap.
#[inline]
pub fn delay(rto: f64, attempt: u32) -> f64 {
    backoff_delay(rto, attempt, DEFAULT_BACKOFF_CAP)
}

/// The delay rounded up to whole seconds and clamped to at least 1 —
/// the shape an HTTP `Retry-After` header wants.
pub fn retry_after_secs(rto: f64, attempt: u32) -> u64 {
    delay(rto, attempt).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        assert_eq!(backoff_delay(1.5, 0, 6), 1.5);
        assert_eq!(backoff_delay(1.5, 1, 6), 3.0);
        assert_eq!(backoff_delay(1.5, 3, 6), 12.0);
        assert_eq!(backoff_delay(1.5, 6, 6), 96.0);
        // Capped: attempts past the cap wait the same.
        assert_eq!(backoff_delay(1.5, 7, 6), 96.0);
        assert_eq!(backoff_delay(1.5, 63, 6), 96.0);
    }

    #[test]
    fn retry_after_is_whole_positive_seconds() {
        assert_eq!(retry_after_secs(0.3, 0), 1);
        assert_eq!(retry_after_secs(1.5, 1), 3);
        assert_eq!(retry_after_secs(2.5, 2), 10);
    }
}
