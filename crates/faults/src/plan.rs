//! Fault configurations and concrete, seed-driven fault plans.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Tunable fault intensities. All rates are probabilities in `[0, 1]`;
/// the default config injects nothing (and [`FaultPlan::random`] then
/// returns an empty plan).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that each processor crashes (permanently) during the
    /// run. The sampler always leaves at least one survivor.
    pub crash_rate: f64,
    /// Per-delivery-attempt probability that a cross-processor message
    /// is dropped (and must be retried after a timeout).
    pub drop_rate: f64,
    /// Probability that a successfully delivered message is *also*
    /// redelivered (the receiver discards the duplicate).
    pub dup_rate: f64,
    /// Maximum extra delivery latency per message, sampled uniformly
    /// from `[0, jitter]` — models reordering: a later send can overtake
    /// an earlier one once jitter exceeds the send spacing.
    pub jitter: f64,
    /// Probability that each processor gets one slowdown (straggler)
    /// window during the run.
    pub straggler_rate: f64,
    /// Duration multiplier applied to tasks started inside a slowdown
    /// window (`>= 1`).
    pub straggler_factor: f64,
    /// Expected number of transient link partitions, per 8 processors.
    pub partition_rate: f64,
    /// Floor on the sender's retransmission timeout (the engine uses
    /// `max(min_rto, 2 × latency)`).
    pub min_rto: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            crash_rate: 0.0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            jitter: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 4.0,
            partition_rate: 0.0,
            min_rto: 1.0,
        }
    }
}

impl FaultConfig {
    /// The same config with crash and drop rates replaced by `rate` —
    /// the x-axis of a degradation curve `makespan(fault_rate)`.
    pub fn at_rate(&self, rate: f64) -> FaultConfig {
        FaultConfig {
            crash_rate: rate,
            drop_rate: rate,
            ..self.clone()
        }
    }

    /// Validates every rate; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("crash_rate", self.crash_rate),
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("straggler_rate", self.straggler_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if self.jitter < 0.0 {
            return Err(format!("jitter must be non-negative, got {}", self.jitter));
        }
        if self.straggler_factor < 1.0 {
            return Err(format!(
                "straggler_factor must be >= 1, got {}",
                self.straggler_factor
            ));
        }
        if self.partition_rate < 0.0 {
            return Err(format!(
                "partition_rate must be non-negative, got {}",
                self.partition_rate
            ));
        }
        if self.min_rto.is_nan() || self.min_rto <= 0.0 {
            return Err(format!("min_rto must be positive, got {}", self.min_rto));
        }
        Ok(())
    }
}

/// A permanent processor failure at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashFault {
    /// The processor that dies.
    pub proc: u32,
    /// Simulated time of death; work in flight at that instant aborts.
    pub at: f64,
}

/// A straggler window: tasks *started* on `proc` during `[start, end)`
/// take `factor ×` their nominal duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// The slowed processor.
    pub proc: u32,
    /// Window start (inclusive).
    pub start: f64,
    /// Window end (exclusive).
    pub end: f64,
    /// Duration multiplier (`>= 1`).
    pub factor: f64,
}

/// A transient link partition: every delivery attempt between `a` and
/// `b` (either direction) during `[start, end)` is dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPartition {
    /// One endpoint.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
    /// Window start (inclusive).
    pub start: f64,
    /// Window end (exclusive).
    pub end: f64,
}

/// A concrete fault schedule plus the per-message randomness source.
///
/// Structural faults (crashes, slowdowns, partitions) are explicit
/// lists; per-message faults (drop / duplicate / jitter) are sampled
/// lazily but *deterministically* from `seed` and the message identity,
/// so two runs of the same plan observe exactly the same faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Processor crashes, at most `m − 1` of them.
    pub crashes: Vec<CrashFault>,
    /// Straggler windows.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Transient link partitions.
    pub partitions: Vec<LinkPartition>,
    /// Per-attempt message drop probability.
    pub drop_rate: f64,
    /// Per-delivery duplicate probability.
    pub dup_rate: f64,
    /// Maximum extra delivery latency (uniform `[0, jitter]`).
    pub jitter: f64,
    /// Retransmission-timeout floor.
    pub min_rto: f64,
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: injects nothing. The fault-aware engine under
    /// this plan is bit-identical to the fault-free one.
    pub fn none() -> FaultPlan {
        FaultPlan {
            crashes: Vec::new(),
            slowdowns: Vec::new(),
            partitions: Vec::new(),
            drop_rate: 0.0,
            dup_rate: 0.0,
            jitter: 0.0,
            min_rto: 1.0,
            seed: 0,
        }
    }

    /// Samples a plan for `m` processors over a run expected to last
    /// about `horizon` time units (use the fault-free makespan).
    /// Structural faults land in the middle 70% of the horizon so they
    /// actually interact with the execution. Deterministic in all
    /// arguments.
    ///
    /// # Panics
    /// Panics when `cfg` fails [`FaultConfig::validate`], `m == 0`, or
    /// `horizon` is not finite and positive.
    pub fn random(m: usize, horizon: f64, cfg: &FaultConfig, seed: u64) -> FaultPlan {
        assert!(m > 0, "need at least one processor");
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be finite and positive"
        );
        if let Err(e) = cfg.validate() {
            panic!("invalid fault config: {e}");
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_F1A9);
        let mut crashes = Vec::new();
        for p in 0..m as u32 {
            // Keep at least one survivor: never crash everyone.
            if crashes.len() + 1 >= m {
                break;
            }
            if rng.random_range(0.0..1.0) < cfg.crash_rate {
                let at = horizon * rng.random_range(0.15..0.85);
                crashes.push(CrashFault { proc: p, at });
            }
        }
        let mut slowdowns = Vec::new();
        for p in 0..m as u32 {
            if rng.random_range(0.0..1.0) < cfg.straggler_rate {
                let start = horizon * rng.random_range(0.0..0.7);
                let len = horizon * rng.random_range(0.1..0.3);
                slowdowns.push(SlowdownWindow {
                    proc: p,
                    start,
                    end: start + len,
                    factor: cfg.straggler_factor,
                });
            }
        }
        let mut partitions = Vec::new();
        if m >= 2 {
            let count = (cfg.partition_rate * m as f64 / 8.0).round() as usize;
            for _ in 0..count {
                let a = rng.random_range(0..m as u32);
                let mut b = rng.random_range(0..m as u32 - 1);
                if b >= a {
                    b += 1;
                }
                let start = horizon * rng.random_range(0.0..0.7);
                let len = horizon * rng.random_range(0.05..0.2);
                partitions.push(LinkPartition {
                    a,
                    b,
                    start,
                    end: start + len,
                });
            }
        }
        FaultPlan {
            crashes,
            slowdowns,
            partitions,
            drop_rate: cfg.drop_rate,
            dup_rate: cfg.dup_rate,
            jitter: cfg.jitter,
            min_rto: cfg.min_rto,
            seed,
        }
    }

    /// `true` when the plan injects nothing at all; the engine then
    /// reproduces the fault-free execution exactly.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.slowdowns.is_empty()
            && self.partitions.is_empty()
            && self.drop_rate == 0.0
            && self.dup_rate == 0.0
            && self.jitter == 0.0
    }

    /// When (if ever) processor `p` crashes.
    pub fn crash_time(&self, p: u32) -> Option<f64> {
        self.crashes.iter().find(|c| c.proc == p).map(|c| c.at)
    }

    /// Whether delivery attempt `attempt` of the message `from → to`
    /// (packed task ids) is dropped by the lossy link. Deterministic.
    #[inline]
    pub fn drops_attempt(&self, from: u64, to: u64, attempt: u32) -> bool {
        self.drop_rate > 0.0 && self.unit(0xD80F, from, to, attempt) < self.drop_rate
    }

    /// Whether the delivered message `from → to` is also redelivered
    /// (a duplicate the receiver must discard). Deterministic.
    #[inline]
    pub fn duplicates(&self, from: u64, to: u64) -> bool {
        self.dup_rate > 0.0 && self.unit(0xD0_B1E, from, to, 0) < self.dup_rate
    }

    /// Extra delivery latency for attempt `attempt` of `from → to`,
    /// uniform in `[0, jitter]`. Deterministic; exactly `0.0` when the
    /// plan has no jitter.
    #[inline]
    pub fn jitter_of(&self, from: u64, to: u64, attempt: u32) -> f64 {
        if self.jitter <= 0.0 {
            0.0
        } else {
            self.jitter * self.unit(0x117E6, from, to, attempt)
        }
    }

    /// Whether the link between `a` and `b` is partitioned at time `t`.
    pub fn partitioned(&self, a: u32, b: u32, t: f64) -> bool {
        self.partitions.iter().any(|w| {
            ((w.a == a && w.b == b) || (w.a == b && w.b == a)) && t >= w.start && t < w.end
        })
    }

    /// The slowdown factor of processor `p` at time `t` (`1.0` outside
    /// every window).
    pub fn slowdown_factor(&self, p: u32, t: f64) -> f64 {
        self.slowdowns
            .iter()
            .find(|w| w.proc == p && t >= w.start && t < w.end)
            .map_or(1.0, |w| w.factor)
    }

    /// A uniform `[0, 1)` hash of `(seed, salt, from, to, attempt)` —
    /// SplitMix64 finalization over the mixed words.
    fn unit(&self, salt: u64, from: u64, to: u64, attempt: u32) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt);
        for w in [from, to.rotate_left(17), attempt as u64] {
            x = splitmix(x ^ w);
        }
        // 53 high bits → [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit permutation.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.drops_attempt(1, 2, 0));
        assert!(!p.duplicates(1, 2));
        assert_eq!(p.jitter_of(1, 2, 0), 0.0);
        assert!(!p.partitioned(0, 1, 5.0));
        assert_eq!(p.slowdown_factor(0, 5.0), 1.0);
        assert_eq!(p.crash_time(0), None);
    }

    #[test]
    fn default_config_samples_empty_plan() {
        let plan = FaultPlan::random(8, 100.0, &FaultConfig::default(), 9);
        assert!(plan.is_empty());
    }

    #[test]
    fn random_plan_is_reproducible_and_seed_sensitive() {
        let cfg = FaultConfig {
            crash_rate: 0.5,
            drop_rate: 0.2,
            straggler_rate: 0.5,
            partition_rate: 2.0,
            ..FaultConfig::default()
        };
        let a = FaultPlan::random(8, 50.0, &cfg, 1);
        let b = FaultPlan::random(8, 50.0, &cfg, 1);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 50.0, &cfg, 2);
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty());
    }

    #[test]
    fn crashes_always_leave_a_survivor() {
        let cfg = FaultConfig {
            crash_rate: 1.0,
            ..FaultConfig::default()
        };
        for m in 1..6 {
            for seed in 0..8 {
                let plan = FaultPlan::random(m, 30.0, &cfg, seed);
                assert!(plan.crashes.len() < m, "m={m} seed={seed}");
            }
        }
    }

    #[test]
    fn structural_faults_land_inside_the_horizon() {
        let cfg = FaultConfig {
            crash_rate: 1.0,
            straggler_rate: 1.0,
            partition_rate: 8.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::random(8, 40.0, &cfg, 3);
        for c in &plan.crashes {
            assert!(c.at > 0.0 && c.at < 40.0);
        }
        for w in &plan.slowdowns {
            assert!(w.start >= 0.0 && w.end > w.start && w.factor >= 1.0);
        }
        for w in &plan.partitions {
            assert_ne!(w.a, w.b);
            assert!(w.end > w.start);
        }
        assert!(!plan.partitions.is_empty());
    }

    #[test]
    fn message_faults_are_deterministic_and_rate_shaped() {
        let cfg = FaultConfig {
            drop_rate: 0.3,
            dup_rate: 0.2,
            jitter: 2.0,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::random(4, 10.0, &cfg, 77);
        let trials = 20_000u64;
        let drops = (0..trials)
            .filter(|&i| plan.drops_attempt(i, i * 31 + 7, 0))
            .count() as f64;
        let rate = drops / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical drop rate {rate}");
        // Deterministic replay.
        assert_eq!(
            plan.drops_attempt(5, 9, 1),
            plan.drops_attempt(5, 9, 1),
            "same decision twice"
        );
        // Jitter bounded.
        for i in 0..100 {
            let j = plan.jitter_of(i, i + 1, 0);
            assert!((0.0..=2.0).contains(&j));
        }
        // Attempts decorrelated: not all attempts of one message agree.
        let varies = (0..32).any(|a| plan.drops_attempt(3, 4, a) != plan.drops_attempt(3, 4, 0));
        assert!(varies);
    }

    #[test]
    fn partition_window_is_symmetric_and_timed() {
        let mut plan = FaultPlan::none();
        plan.partitions.push(LinkPartition {
            a: 0,
            b: 2,
            start: 5.0,
            end: 10.0,
        });
        assert!(plan.partitioned(0, 2, 5.0));
        assert!(plan.partitioned(2, 0, 9.9));
        assert!(!plan.partitioned(0, 2, 10.0));
        assert!(!plan.partitioned(0, 1, 7.0));
    }

    #[test]
    fn config_validation_rejects_bad_rates() {
        let bad = FaultConfig {
            crash_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("crash_rate"));
        let bad = FaultConfig {
            straggler_factor: 0.5,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("straggler_factor"));
        let bad = FaultConfig {
            jitter: -1.0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("jitter"));
        assert!(FaultConfig::default().validate().is_ok());
    }

    #[test]
    fn at_rate_overrides_crash_and_drop() {
        let cfg = FaultConfig {
            dup_rate: 0.1,
            ..FaultConfig::default()
        };
        let r = cfg.at_rate(0.4);
        assert_eq!(r.crash_rate, 0.4);
        assert_eq!(r.drop_rate, 0.4);
        assert_eq!(r.dup_rate, 0.1);
    }
}
