//! # sweep-faults — deterministic fault injection for distributed sweeps
//!
//! The asynchronous simulator in `sweep-sim` models a *perfect* cluster:
//! no processor ever stalls or dies, and every face-flux message arrives
//! exactly `latency` after it is sent. Real S_n sweep runs at scale hit
//! stragglers, dropped packets, and node failures constantly; what
//! matters in practice is how gracefully a schedule's makespan degrades
//! under imperfect execution.
//!
//! This crate provides the *model* half of that robustness axis:
//!
//! * [`FaultConfig`] — the knobs (crash rate, per-message drop rate,
//!   duplicate rate, delivery jitter, straggler windows, link
//!   partitions);
//! * [`FaultPlan`] — a concrete, seed-driven plan sampled from a config:
//!   which processors crash when, which processors slow down over which
//!   windows, which links partition, plus deterministic per-message
//!   drop/duplicate/jitter decisions (a hash of the plan seed and the
//!   message identity, so replaying a plan is bit-reproducible);
//! * [`FaultReport`] — what the fault-aware engine
//!   (`sweep_sim::async_makespan_faulty`) observed: degraded makespan,
//!   retries, redeliveries, recovered tasks, reassigned cells, and a
//!   bounded per-fault [`FaultEvent`] timeline, renderable as text or
//!   stable JSON (CI diffs the JSON against a golden file).
//!
//! The crate is dependency-free apart from the in-tree `sweep-rng`
//! alias, mirroring the offline-build policy of the rest of the
//! workspace. It deliberately knows nothing about instances, schedules,
//! or the engine — the execution semantics live in `sweep-sim`, the
//! trace certification in `sweep-analyze`.
//!
//! ```
//! use sweep_faults::{FaultConfig, FaultPlan};
//!
//! let cfg = FaultConfig { crash_rate: 0.25, drop_rate: 0.1, ..FaultConfig::default() };
//! let plan = FaultPlan::random(8, 100.0, &cfg, 42);
//! assert_eq!(plan, FaultPlan::random(8, 100.0, &cfg, 42)); // reproducible
//! assert!(plan.crashes.len() < 8, "at least one survivor");
//! assert!(FaultPlan::none().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod backoff;
mod plan;
mod report;

pub use plan::{CrashFault, FaultConfig, FaultPlan, LinkPartition, SlowdownWindow};
pub use report::{FaultEvent, FaultKind, FaultReport, MAX_TIMELINE};
