//! Cell → processor assignments.
//!
//! The sweep constraint (every copy `(v, i)` of a cell runs on the same
//! processor) makes the assignment a function of the *cell* alone, so it is
//! represented as one `Vec<u32>` over cells. The two policies from the
//! paper are:
//!
//! * **per-cell random** (Algorithms 1–3, step "choose a processor
//!   uniformly at random for each vertex");
//! * **per-block random** (§5.1): partition the mesh into blocks (METIS in
//!   the paper, [`sweep_partition`] here) and draw one processor per
//!   *block* — fewer interprocessor edges at a slight makespan cost.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A cell → processor map for `m` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    proc_of_cell: Vec<u32>,
    m: usize,
}

impl Assignment {
    /// Wraps an explicit map.
    ///
    /// # Panics
    /// Panics if any entry is `>= m` or `m == 0`.
    pub fn from_vec(proc_of_cell: Vec<u32>, m: usize) -> Assignment {
        assert!(m > 0, "need at least one processor");
        assert!(
            proc_of_cell.iter().all(|&p| (p as usize) < m),
            "processor id out of range"
        );
        Assignment { proc_of_cell, m }
    }

    /// Every cell on processor 0 (the `m = 1` baseline).
    pub fn single(n: usize) -> Assignment {
        Assignment {
            proc_of_cell: vec![0; n],
            m: 1,
        }
    }

    /// Uniformly random processor per cell — the assignment of
    /// Algorithms 1–3.
    pub fn random_cells(n: usize, m: usize, seed: u64) -> Assignment {
        assert!(m > 0, "need at least one processor");
        let mut rng = StdRng::seed_from_u64(seed);
        Assignment {
            proc_of_cell: (0..n).map(|_| rng.random_range(0..m as u32)).collect(),
            m,
        }
    }

    /// Uniformly random processor per *block*: `block_of_cell[v]` gives the
    /// block (e.g. from [`sweep_partition::block_partition`]); all cells of
    /// a block share one random processor (§5.1).
    pub fn random_blocks(block_of_cell: &[u32], m: usize, seed: u64) -> Assignment {
        assert!(m > 0, "need at least one processor");
        let nblocks = block_of_cell
            .iter()
            .copied()
            .max()
            .map_or(0, |b| b as usize + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let proc_of_block: Vec<u32> = (0..nblocks)
            .map(|_| rng.random_range(0..m as u32))
            .collect();
        Assignment {
            proc_of_cell: block_of_cell
                .iter()
                .map(|&b| proc_of_block[b as usize])
                .collect(),
            m,
        }
    }

    /// Deterministic weight-aware block assignment: blocks are placed on
    /// processors by Longest-Processing-Time bin packing of their total
    /// cell weight (heaviest block first onto the least-loaded
    /// processor). With unit weights this balances block *counts*; with
    /// real per-cell costs it balances work — the natural deterministic
    /// alternative to [`Assignment::random_blocks`] for graded meshes.
    pub fn lpt_blocks(block_of_cell: &[u32], cell_weight: &[u64], m: usize) -> Assignment {
        assert!(m > 0, "need at least one processor");
        assert_eq!(
            block_of_cell.len(),
            cell_weight.len(),
            "one weight per cell"
        );
        let nblocks = block_of_cell
            .iter()
            .copied()
            .max()
            .map_or(0, |b| b as usize + 1);
        let mut block_weight = vec![0u64; nblocks];
        for (&b, &w) in block_of_cell.iter().zip(cell_weight) {
            block_weight[b as usize] += w;
        }
        let mut order: Vec<u32> = (0..nblocks as u32).collect();
        order.sort_unstable_by_key(|&b| std::cmp::Reverse(block_weight[b as usize]));
        // Min-heap of (load, proc).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..m as u32)
            .map(|p| std::cmp::Reverse((0u64, p)))
            .collect();
        let mut proc_of_block = vec![0u32; nblocks];
        for &b in &order {
            let std::cmp::Reverse((load, p)) = heap.pop().expect("m > 0");
            proc_of_block[b as usize] = p;
            heap.push(std::cmp::Reverse((load + block_weight[b as usize], p)));
        }
        Assignment {
            proc_of_cell: block_of_cell
                .iter()
                .map(|&b| proc_of_block[b as usize])
                .collect(),
            m,
        }
    }

    /// Deterministic round-robin (cell `v` on processor `v mod m`) — a
    /// non-random baseline used in tests and ablations.
    pub fn round_robin(n: usize, m: usize) -> Assignment {
        assert!(m > 0, "need at least one processor");
        Assignment {
            proc_of_cell: (0..n as u32).map(|v| v % m as u32).collect(),
            m,
        }
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.proc_of_cell.len()
    }

    /// The processor of cell `v`.
    #[inline]
    pub fn proc_of(&self, v: u32) -> u32 {
        self.proc_of_cell[v as usize]
    }

    /// The raw map.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.proc_of_cell
    }

    /// Number of cells per processor.
    pub fn loads(&self) -> Vec<u32> {
        let mut l = vec![0u32; self.m];
        for &p in &self.proc_of_cell {
            l[p as usize] += 1;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cells_in_range_and_deterministic() {
        let a = Assignment::random_cells(1000, 16, 7);
        let b = Assignment::random_cells(1000, 16, 7);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&p| p < 16));
        assert_eq!(a.num_procs(), 16);
        assert_eq!(a.num_cells(), 1000);
    }

    #[test]
    fn random_cells_roughly_balanced() {
        let a = Assignment::random_cells(16_000, 16, 3);
        for (p, &l) in a.loads().iter().enumerate() {
            // E[load] = 1000; Chernoff keeps it within ±20% w.h.p.
            assert!((l as i64 - 1000).abs() < 200, "proc {p} load {l}");
        }
    }

    #[test]
    fn blocks_share_processors() {
        // 4 blocks of 3 cells.
        let blocks: Vec<u32> = vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3];
        let a = Assignment::random_blocks(&blocks, 8, 5);
        for chunk in a.as_slice().chunks(3) {
            assert!(chunk.iter().all(|&p| p == chunk[0]));
        }
    }

    #[test]
    fn round_robin_is_cyclic() {
        let a = Assignment::round_robin(7, 3);
        assert_eq!(a.as_slice(), &[0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(a.loads(), vec![3, 2, 2]);
    }

    #[test]
    fn single_uses_proc_zero() {
        let a = Assignment::single(5);
        assert!(a.as_slice().iter().all(|&p| p == 0));
        assert_eq!(a.num_procs(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_vec_validates() {
        Assignment::from_vec(vec![0, 5], 2);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        Assignment::random_cells(10, 0, 0);
    }

    #[test]
    fn empty_block_map() {
        let a = Assignment::random_blocks(&[], 4, 1);
        assert_eq!(a.num_cells(), 0);
        let b = Assignment::lpt_blocks(&[], &[], 4);
        assert_eq!(b.num_cells(), 0);
    }

    #[test]
    fn lpt_balances_weights() {
        // 4 blocks with weights 7, 5, 4, 4 onto 2 procs: LPT gives
        // {7, 4} vs {5, 4} — loads 11/9.
        let blocks: Vec<u32> = vec![0, 1, 2, 3];
        let weights: Vec<u64> = vec![7, 5, 4, 4];
        let a = Assignment::lpt_blocks(&blocks, &weights, 2);
        let mut loads = [0u64; 2];
        for (v, &w) in weights.iter().enumerate() {
            loads[a.proc_of(v as u32) as usize] += w;
        }
        loads.sort_unstable();
        assert_eq!(loads, [9, 11]);
    }

    #[test]
    fn lpt_keeps_blocks_together() {
        let blocks: Vec<u32> = vec![0, 0, 1, 1, 2, 2];
        let weights = vec![1u64; 6];
        let a = Assignment::lpt_blocks(&blocks, &weights, 3);
        for pair in a.as_slice().chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per cell")]
    fn lpt_validates_lengths() {
        Assignment::lpt_blocks(&[0, 1], &[1], 2);
    }
}
