//! Replicated runs of the randomized algorithms.
//!
//! All the paper's algorithms are randomized twice over (delay draw and
//! processor assignment); a single run says little about typical-case
//! behaviour. This module repeats an [`Algorithm`] across seeds and
//! summarizes the makespan distribution, so experiments can report
//! mean ± deviation instead of single samples — and so the "with high
//! probability" flavour of Theorems 1–2 can be observed directly (tight
//! concentration of the makespan across draws).

use sweep_dag::SweepInstance;

use crate::algorithms::Algorithm;
use crate::assignment::Assignment;

/// How the per-replicate assignment is drawn.
#[derive(Debug, Clone)]
pub enum AssignmentDraw {
    /// Fresh per-cell random assignment each replicate.
    RandomCells,
    /// Fresh per-block random assignment over a fixed block map.
    RandomBlocks(Vec<u32>),
    /// The same fixed assignment every replicate (isolates delay noise).
    Fixed(Assignment),
}

/// Summary statistics over replicated makespans.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicateSummary {
    /// Number of replicates.
    pub runs: usize,
    /// Smallest makespan observed.
    pub min: u32,
    /// Largest makespan observed.
    pub max: u32,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single run).
    pub std_dev: f64,
    /// Every observed makespan, in seed order.
    pub samples: Vec<u32>,
}

impl ReplicateSummary {
    /// Coefficient of variation `σ/μ` — the concentration measure.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Runs `algorithm` for `runs` replicates on `m` processors, drawing
/// fresh randomness per replicate from `base_seed + i`.
///
/// # Panics
/// Panics when `runs == 0`.
pub fn replicate(
    instance: &SweepInstance,
    algorithm: Algorithm,
    m: usize,
    draw: &AssignmentDraw,
    base_seed: u64,
    runs: usize,
) -> ReplicateSummary {
    assert!(runs > 0, "need at least one replicate");
    let n = instance.num_cells();
    let mut samples = Vec::with_capacity(runs);
    for i in 0..runs as u64 {
        let seed = base_seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
        let assignment = match draw {
            AssignmentDraw::RandomCells => Assignment::random_cells(n, m, seed),
            AssignmentDraw::RandomBlocks(blocks) => Assignment::random_blocks(blocks, m, seed),
            AssignmentDraw::Fixed(a) => a.clone(),
        };
        let schedule = algorithm.run(instance, assignment, seed ^ 0x5eed);
        samples.push(schedule.makespan());
    }
    summarize(samples)
}

fn summarize(samples: Vec<u32>) -> ReplicateSummary {
    let runs = samples.len();
    let min = samples.iter().copied().min().expect("non-empty");
    let max = samples.iter().copied().max().expect("non-empty");
    let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (runs - 1) as f64
    } else {
        0.0
    };
    ReplicateSummary {
        runs,
        min,
        max,
        mean,
        std_dev: var.sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_correct() {
        let s = summarize(vec![10, 12, 14]);
        assert_eq!(s.runs, 3);
        assert_eq!((s.min, s.max), (10, 14));
        assert!((s.mean - 12.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert!((s.cv() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn single_run_zero_deviation() {
        let s = summarize(vec![7]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn replicates_vary_with_random_draws_but_not_fixed_seeds() {
        let inst = SweepInstance::random_layered(80, 4, 6, 2, 1);
        let sum = replicate(
            &inst,
            Algorithm::RandomDelayPriorities,
            8,
            &AssignmentDraw::RandomCells,
            100,
            6,
        );
        assert_eq!(sum.runs, 6);
        assert!(sum.min <= sum.max);
        // Deterministic reproduction.
        let sum2 = replicate(
            &inst,
            Algorithm::RandomDelayPriorities,
            8,
            &AssignmentDraw::RandomCells,
            100,
            6,
        );
        assert_eq!(sum.samples, sum2.samples);
    }

    #[test]
    fn makespan_concentrates() {
        // The w.h.p. flavour of Theorem 1: the coefficient of variation
        // across replicates is small on reasonable instances.
        let inst = SweepInstance::random_layered(400, 8, 10, 2, 3);
        let sum = replicate(
            &inst,
            Algorithm::RandomDelayPriorities,
            16,
            &AssignmentDraw::RandomCells,
            7,
            8,
        );
        assert!(sum.cv() < 0.1, "cv = {:.3}", sum.cv());
    }

    #[test]
    fn fixed_assignment_isolates_delay_noise() {
        let inst = SweepInstance::random_layered(100, 6, 8, 2, 2);
        let a = Assignment::random_cells(100, 8, 9);
        let fixed = replicate(
            &inst,
            Algorithm::RandomDelayPriorities,
            8,
            &AssignmentDraw::Fixed(a),
            50,
            6,
        );
        let free = replicate(
            &inst,
            Algorithm::RandomDelayPriorities,
            8,
            &AssignmentDraw::RandomCells,
            50,
            6,
        );
        // Both valid summaries; fixed-assignment variance only reflects
        // delay draws.
        assert_eq!(fixed.runs, free.runs);
        assert!(fixed.min > 0 && free.min > 0);
    }

    #[test]
    fn greedy_with_fixed_assignment_is_deterministic() {
        let inst = SweepInstance::random_layered(60, 3, 5, 2, 4);
        let a = Assignment::random_cells(60, 4, 11);
        let sum = replicate(&inst, Algorithm::Greedy, 4, &AssignmentDraw::Fixed(a), 0, 5);
        assert_eq!(sum.min, sum.max);
        assert_eq!(sum.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_runs_panics() {
        let inst = SweepInstance::identical_chains(3, 1);
        replicate(
            &inst,
            Algorithm::Greedy,
            1,
            &AssignmentDraw::RandomCells,
            0,
            0,
        );
    }
}
