//! Non-uniform task costs — relaxing the paper's `p = 1` assumption.
//!
//! Real transport meshes have heterogeneous cells (local refinement,
//! material interfaces), so production sweeps have per-cell work that
//! varies by an order of magnitude. This module provides an event-driven
//! weighted list scheduler (tasks of cell `v` take `weight[v]` time in
//! every direction), a weighted feasibility validator, and weighted lower
//! bounds. The random-delay priorities carry over unchanged — the delay
//! argument only needs the *layering*, not unit durations — so
//! [`weighted_random_delay_priorities`] is the natural weighted analogue
//! of Algorithm 2.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sweep_dag::{levels, SweepInstance, TaskId};

use crate::assignment::Assignment;
use crate::random_delay::random_delays;

/// A schedule with per-task durations: task `(v, i)` runs on
/// `assignment.proc_of(v)` during `[start, start + weight[v])`.
#[derive(Debug, Clone)]
pub struct WeightedSchedule {
    /// Start time per task (`TaskId::index` order).
    pub start: Vec<u64>,
    /// The cell → processor assignment.
    pub assignment: Assignment,
    /// Completion time of the last task.
    pub makespan: u64,
}

/// Validates cell weights: one strictly positive weight per cell.
fn check_weights(n: usize, weights: &[u64]) {
    assert_eq!(weights.len(), n, "one weight per cell");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
}

/// Event-driven weighted list scheduling: at every scheduling decision
/// the freed processor takes its ready task of minimum `priority`
/// (ties by task id).
pub fn weighted_list_schedule(
    instance: &SweepInstance,
    assignment: Assignment,
    weights: &[u64],
    priority: &[i64],
) -> WeightedSchedule {
    let n = instance.num_cells();
    let k = instance.num_directions();
    check_weights(n, weights);
    assert_eq!(priority.len(), n * k, "one priority per task");
    let m = assignment.num_procs();
    let mut start = vec![0u64; n * k];
    if n == 0 {
        return WeightedSchedule {
            start,
            assignment,
            makespan: 0,
        };
    }

    let mut indeg = vec![0u32; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        for v in 0..n as u32 {
            indeg[TaskId::pack(v, i as u32, n).index()] = dag.in_degree(v);
        }
    }
    // Ready heap per processor.
    let mut ready: Vec<BinaryHeap<Reverse<(i64, u64)>>> = vec![BinaryHeap::new(); m];
    for t in 0..(n * k) as u64 {
        if indeg[t as usize] == 0 {
            let v = (t % n as u64) as u32;
            ready[assignment.proc_of(v) as usize].push(Reverse((priority[t as usize], t)));
        }
    }
    // Event queue of task completions: (finish_time, proc, task).
    let mut events: BinaryHeap<Reverse<(u64, u32, u64)>> = BinaryHeap::new();
    let mut busy = vec![false; m];
    let mut makespan = 0u64;
    let mut pending = n * k;

    // Helper closure semantics inlined: start best ready task on proc at t.
    macro_rules! dispatch {
        ($p:expr, $t:expr) => {{
            let p: usize = $p;
            let now: u64 = $t;
            if !busy[p] {
                if let Some(Reverse((_, task))) = ready[p].pop() {
                    let v = (task % n as u64) as u32;
                    start[task as usize] = now;
                    let fin = now + weights[v as usize];
                    makespan = makespan.max(fin);
                    busy[p] = true;
                    events.push(Reverse((fin, p as u32, task)));
                }
            }
        }};
    }

    for p in 0..m {
        dispatch!(p, 0);
    }
    while let Some(Reverse((t, p, task))) = events.pop() {
        busy[p as usize] = false;
        pending -= 1;
        let (v, dir) = TaskId(task).unpack(n);
        for &w in instance.dag(dir as usize).successors(v) {
            let wt = TaskId::pack(w, dir, n).index();
            indeg[wt] -= 1;
            if indeg[wt] == 0 {
                let wp = assignment.proc_of(w) as usize;
                ready[wp].push(Reverse((priority[wt], wt as u64)));
                dispatch!(wp, t);
            }
        }
        dispatch!(p as usize, t);
    }
    debug_assert_eq!(pending, 0, "all tasks must complete");
    WeightedSchedule {
        start,
        assignment,
        makespan,
    }
}

/// Weighted Algorithm 2: `Γ(v,i) = level_i(v) + X_i` priorities under the
/// weighted scheduler.
pub fn weighted_random_delay_priorities(
    instance: &SweepInstance,
    assignment: Assignment,
    weights: &[u64],
    seed: u64,
) -> WeightedSchedule {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let delays = random_delays(k, seed);
    let mut prio = vec![0i64; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        let lv = levels(dag);
        for v in 0..n as u32 {
            prio[TaskId::pack(v, i as u32, n).index()] =
                lv.level_of[v as usize] as i64 + delays[i] as i64;
        }
    }
    weighted_list_schedule(instance, assignment, weights, &prio)
}

/// Weighted feasibility violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedViolation {
    /// Precedence violated (successor starts before predecessor ends).
    Precedence {
        /// Direction id.
        dir: u32,
        /// Upstream cell.
        u: u32,
        /// Downstream cell.
        v: u32,
    },
    /// Two tasks overlap on one processor.
    Overlap {
        /// The double-booked processor.
        proc: u32,
        /// First task (by id).
        a: u64,
        /// Second task (by id).
        b: u64,
    },
}

impl std::fmt::Display for WeightedViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedViolation::Precedence { dir, u, v } => {
                write!(f, "direction {dir}: {u} must end before {v} starts")
            }
            WeightedViolation::Overlap { proc, a, b } => {
                write!(f, "processor {proc}: tasks {a} and {b} overlap")
            }
        }
    }
}

impl std::error::Error for WeightedViolation {}

/// Independent validator for weighted schedules.
pub fn validate_weighted(
    instance: &SweepInstance,
    schedule: &WeightedSchedule,
    weights: &[u64],
) -> Result<(), WeightedViolation> {
    let n = instance.num_cells();
    check_weights(n, weights);
    for (i, dag) in instance.dags().iter().enumerate() {
        for (u, v) in dag.edges() {
            let su = schedule.start[TaskId::pack(u, i as u32, n).index()];
            let sv = schedule.start[TaskId::pack(v, i as u32, n).index()];
            if sv < su + weights[u as usize] {
                return Err(WeightedViolation::Precedence {
                    dir: i as u32,
                    u,
                    v,
                });
            }
        }
    }
    // Per-processor interval overlap check.
    let m = schedule.assignment.num_procs();
    let mut per_proc: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); m]; // (start, end, task)
    for t in 0..(n * instance.num_directions()) as u64 {
        let v = (t % n as u64) as u32;
        let s = schedule.start[t as usize];
        per_proc[schedule.assignment.proc_of(v) as usize].push((s, s + weights[v as usize], t));
    }
    for (p, list) in per_proc.iter_mut().enumerate() {
        list.sort_unstable();
        for w in list.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(WeightedViolation::Overlap {
                    proc: p as u32,
                    a: w[0].2,
                    b: w[1].2,
                });
            }
        }
    }
    Ok(())
}

/// Weighted lower bound: `max(⌈k·Σw/m⌉, k·max_w, weighted critical path)`.
pub fn weighted_lower_bound(instance: &SweepInstance, weights: &[u64], m: usize) -> u64 {
    let n = instance.num_cells();
    check_weights(n, weights);
    assert!(m > 0);
    let total: u64 = weights.iter().sum::<u64>() * instance.num_directions() as u64;
    let load = total.div_ceil(m as u64);
    // All k copies of the heaviest cell serialize on one processor.
    let serial = weights.iter().copied().max().unwrap_or(0) * instance.num_directions() as u64;
    // Weighted critical path per direction.
    let mut cp = 0u64;
    for dag in instance.dags() {
        let order = dag.topo_order().expect("acyclic");
        let mut f = vec![0u64; n];
        for &v in &order {
            let mut best = 0u64;
            for &u in dag.predecessors(v) {
                best = best.max(f[u as usize]);
            }
            f[v as usize] = best + weights[v as usize];
            cp = cp.max(f[v as usize]);
        }
    }
    load.max(serial).max(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn random_weights(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(1..10u64)).collect()
    }

    #[test]
    fn unit_weights_match_unit_engine() {
        let inst = SweepInstance::random_layered(60, 4, 6, 2, 1);
        let a = Assignment::random_cells(60, 6, 2);
        let w = vec![1u64; 60];
        let prio = crate::priorities::level_priorities(&inst);
        let ws = weighted_list_schedule(&inst, a.clone(), &w, &prio);
        validate_weighted(&inst, &ws, &w).unwrap();
        let us = crate::list_schedule::list_schedule(&inst, a, &prio, None);
        // Event-driven dispatch can differ from slotted dispatch in tie
        // handling, so require equality only of the bound-level behaviour.
        assert!(ws.makespan <= us.makespan() as u64 + 2);
        assert!(ws.makespan >= weighted_lower_bound(&inst, &w, 6));
    }

    #[test]
    fn weighted_schedules_feasible_across_seeds() {
        for seed in 0..5u64 {
            let inst = SweepInstance::random_layered(80, 4, 8, 2, seed);
            let w = random_weights(80, seed);
            let a = Assignment::random_cells(80, 8, seed ^ 3);
            let s = weighted_random_delay_priorities(&inst, a, &w, seed);
            validate_weighted(&inst, &s, &w).unwrap();
            assert!(s.makespan >= weighted_lower_bound(&inst, &w, 8));
        }
    }

    #[test]
    fn heavy_cell_dominates_lower_bound() {
        let inst = SweepInstance::identical_chains(10, 4);
        let mut w = vec![1u64; 10];
        w[5] = 100;
        let lb = weighted_lower_bound(&inst, &w, 4);
        assert!(lb >= 400, "four copies of the heavy cell serialize: {lb}");
    }

    #[test]
    fn single_proc_weighted_makespan_is_total_work() {
        let inst = SweepInstance::random_layered(30, 3, 5, 2, 2);
        let w = random_weights(30, 7);
        let total: u64 = w.iter().sum::<u64>() * 3;
        let prio = crate::priorities::level_priorities(&inst);
        let s = weighted_list_schedule(&inst, Assignment::single(30), &w, &prio);
        validate_weighted(&inst, &s, &w).unwrap();
        assert_eq!(s.makespan, total);
    }

    #[test]
    fn validator_catches_overlap_and_precedence() {
        let inst = SweepInstance::identical_chains(2, 1);
        let w = vec![5u64, 5];
        // Precedence violation: successor starts at 3 < 0 + 5.
        let bad = WeightedSchedule {
            start: vec![0, 3],
            assignment: Assignment::from_vec(vec![0, 1], 2),
            makespan: 8,
        };
        assert!(matches!(
            validate_weighted(&inst, &bad, &w),
            Err(WeightedViolation::Precedence { .. })
        ));
        // Overlap: two independent cells on one proc at overlapping times.
        let inst2 = SweepInstance::new(2, vec![sweep_dag::TaskDag::edgeless(2)], "i");
        let bad2 = WeightedSchedule {
            start: vec![0, 2],
            assignment: Assignment::single(2),
            makespan: 7,
        };
        let err = validate_weighted(&inst2, &bad2, &w).unwrap_err();
        assert!(matches!(err, WeightedViolation::Overlap { proc: 0, .. }));
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn weighted_ratio_stays_small() {
        // The weighted analogue of the paper's empirical claim.
        let inst = SweepInstance::random_layered(200, 6, 10, 2, 9);
        let w = random_weights(200, 4);
        let m = 16;
        let a = Assignment::random_cells(200, m, 5);
        let s = weighted_random_delay_priorities(&inst, a, &w, 6);
        let lb = weighted_lower_bound(&inst, &w, m);
        let ratio = s.makespan as f64 / lb as f64;
        assert!(ratio < 3.0, "weighted ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let inst = SweepInstance::identical_chains(2, 1);
        weighted_lower_bound(&inst, &[1, 0], 2);
    }
}
