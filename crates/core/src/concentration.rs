//! The probabilistic machinery of §4 — Chernoff–Hoeffding bound helpers
//! (Lemma 1, equation (3)) and empirical congestion measurements for the
//! quantities bounded by Lemmas 2 and 3.
//!
//! The analytic functions are used by tests and the `lemma_congestion`
//! experiment to check that on real instances the per-layer copy counts
//! and per-processor layer loads indeed stay within the proven envelopes.

use sweep_dag::{levels, SweepInstance, TaskId};

use crate::assignment::Assignment;

/// The Chernoff tail `G(μ, δ) = (e^δ / (1+δ)^{1+δ})^μ` of Lemma 1(a).
pub fn chernoff_g(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0 && delta >= 0.0);
    if mu == 0.0 {
        return 1.0;
    }
    // Compute in log space for numerical stability; ln_1p is accurate for
    // small δ.
    let ln_g = mu * (delta - (1.0 + delta) * delta.ln_1p());
    ln_g.exp()
}

/// The threshold `F(μ, p)` of Lemma 1(b): a load level exceeded with
/// probability below `p`. Uses the paper's two-regime formula with
/// constant `a`.
pub fn chernoff_f(mu: f64, p: f64, a: f64) -> f64 {
    assert!(mu > 0.0 && (0.0..1.0).contains(&p) && p > 0.0);
    let lnp = (1.0 / p).ln();
    if mu <= lnp / std::f64::consts::E {
        a * lnp / (lnp / mu).ln()
    } else {
        mu + a * (lnp / mu).sqrt() * mu // a·sqrt(ln(p⁻¹)·μ) written as a·μ·sqrt(lnp/μ)
    }
}

/// The function `H(μ, p)` of equation (3) with constant `C`: the expected
/// balls-in-bins max-load envelope used in the Theorem 3 analysis.
pub fn balls_in_bins_h(mu: f64, p: f64, c: f64) -> f64 {
    assert!(mu > 0.0 && (0.0..1.0).contains(&p) && p > 0.0);
    let lnp = (1.0 / p).ln();
    if mu <= lnp / std::f64::consts::E {
        c * lnp / (lnp / mu).ln()
    } else {
        c * std::f64::consts::E * mu
    }
}

/// Empirical congestion of a delayed layering: for combined layers
/// `r = level_i(v) + X_i`, reports per-layer statistics of the quantity
/// bounded by **Lemma 2** — the number of copies of a single cell in a
/// layer — and by **Lemma 3** — the number of tasks of one layer assigned
/// to one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionStats {
    /// `max_{r,v} |{i : (v,i) ∈ L_r}|` — Lemma 2's random variable.
    pub max_copies_per_cell_layer: u32,
    /// `max_{r,P} |{(v,i) ∈ L_r : proc(v) = P}|` — Lemma 3's variable.
    pub max_tasks_per_proc_layer: u32,
    /// Number of combined layers `R ≤ D + k`.
    pub num_layers: u32,
    /// Widest combined layer.
    pub max_layer_width: u32,
}

/// Measures the congestion of the combined layering induced by `delays`
/// under `assignment`.
pub fn layer_congestion(
    instance: &SweepInstance,
    assignment: &Assignment,
    delays: &[u32],
) -> CongestionStats {
    let n = instance.num_cells();
    let k = instance.num_directions();
    assert_eq!(delays.len(), k);
    assert_eq!(assignment.num_cells(), n);
    let m = assignment.num_procs();

    // layer per task
    let mut layer_of = vec![0u32; n * k];
    let mut num_layers = 0u32;
    for (i, dag) in instance.dags().iter().enumerate() {
        let lv = levels(dag);
        for v in 0..n as u32 {
            let r = lv.level_of[v as usize] + delays[i];
            layer_of[TaskId::pack(v, i as u32, n).index()] = r;
            num_layers = num_layers.max(r + 1);
        }
    }
    // Bucket-by-layer pass, reusing scratch arrays across layers.
    let mut order: Vec<u64> = (0..(n * k) as u64).collect();
    order.sort_unstable_by_key(|&t| layer_of[t as usize]);
    let mut copies = vec![0u32; n];
    let mut loads = vec![0u32; m];
    let mut max_copies = 0u32;
    let mut max_load = 0u32;
    let mut max_width = 0u32;
    let mut idx = 0usize;
    while idx < order.len() {
        let r = layer_of[order[idx] as usize];
        let begin = idx;
        while idx < order.len() && layer_of[order[idx] as usize] == r {
            let v = (order[idx] % n as u64) as u32;
            copies[v as usize] += 1;
            loads[assignment.proc_of(v) as usize] += 1;
            max_copies = max_copies.max(copies[v as usize]);
            max_load = max_load.max(loads[assignment.proc_of(v) as usize]);
            idx += 1;
        }
        max_width = max_width.max((idx - begin) as u32);
        // Reset only the touched entries.
        for &t in &order[begin..idx] {
            let v = (t % n as u64) as u32;
            copies[v as usize] = 0;
            loads[assignment.proc_of(v) as usize] = 0;
        }
    }
    CongestionStats {
        max_copies_per_cell_layer: max_copies,
        max_tasks_per_proc_layer: max_load,
        num_layers,
        max_layer_width: max_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_delay::random_delays;

    #[test]
    fn chernoff_g_basics() {
        // G(μ, 0) = 1; decreasing in δ; decreasing in μ for fixed δ > 0.
        assert!((chernoff_g(5.0, 0.0) - 1.0).abs() < 1e-12);
        assert!(chernoff_g(5.0, 1.0) < chernoff_g(5.0, 0.5));
        assert!(chernoff_g(10.0, 1.0) < chernoff_g(5.0, 1.0));
        // Known value: G(1, 1) = e/4.
        assert!((chernoff_g(1.0, 1.0) - std::f64::consts::E / 4.0).abs() < 1e-9);
    }

    #[test]
    fn chernoff_f_exceeds_mean() {
        for (mu, p) in [(0.5, 0.01), (2.0, 0.001), (50.0, 1e-6)] {
            let f = chernoff_f(mu, p, 1.0);
            assert!(f > 0.0);
            if mu > (1.0f64 / p).ln() / std::f64::consts::E {
                assert!(f >= mu, "F({mu},{p}) = {f} < μ");
            }
        }
    }

    #[test]
    fn chernoff_f_tail_actually_small() {
        // Sanity-check Lemma 1(b) numerically: P[X > F(μ,p)] < p for a
        // Poisson-ish binomial via the G bound.
        let (mu, p) = (1.0, 1e-4);
        let f = chernoff_f(mu, p, 2.0);
        let delta = f / mu - 1.0;
        assert!(delta > 0.0);
        assert!(chernoff_g(mu, delta) < p * 10.0, "tail bound too weak");
    }

    #[test]
    fn h_is_concave_like_and_monotone() {
        let p = 1e-4;
        let c = 2.0;
        // Non-decreasing in μ.
        let mut prev = 0.0;
        for mu in [0.01, 0.1, 0.5, 1.0, 5.0, 50.0] {
            let h = balls_in_bins_h(mu, p, c);
            assert!(h >= prev, "H not monotone at μ={mu}");
            prev = h;
        }
    }

    #[test]
    fn congestion_on_identical_chains_without_delays_is_k() {
        // Lemma 2's quantity degenerates to k when all delays are zero on
        // identical chains.
        let (n, k) = (30usize, 6usize);
        let inst = SweepInstance::identical_chains(n, k);
        let a = Assignment::random_cells(n, 4, 1);
        let zero = vec![0u32; k];
        let s = layer_congestion(&inst, &a, &zero);
        assert_eq!(s.max_copies_per_cell_layer, k as u32);
        assert_eq!(s.num_layers, n as u32);
    }

    #[test]
    fn congestion_with_delays_is_small() {
        // With random delays the per-layer copy count collapses to O(log)
        // — here just assert it is far below k.
        let (n, k) = (30usize, 16usize);
        let inst = SweepInstance::identical_chains(n, k);
        let a = Assignment::random_cells(n, 4, 1);
        let d = random_delays(k, 7);
        let s = layer_congestion(&inst, &a, &d);
        assert!(
            s.max_copies_per_cell_layer <= 6,
            "delays should spread copies: {}",
            s.max_copies_per_cell_layer
        );
        assert!(s.num_layers as usize <= n + k);
    }

    #[test]
    fn proc_load_bounded_by_width() {
        let inst = SweepInstance::random_layered(100, 4, 8, 2, 3);
        let a = Assignment::random_cells(100, 8, 4);
        let d = random_delays(4, 5);
        let s = layer_congestion(&inst, &a, &d);
        assert!(s.max_tasks_per_proc_layer <= s.max_layer_width);
        assert!(s.max_copies_per_cell_layer >= 1);
    }
}
