//! # sweep-core — provable parallel sweep-scheduling algorithms
//!
//! Implementation of Anil Kumar, Marathe, Parthasarathy, Srinivasan &
//! Zust, *Provable Algorithms for Parallel Sweep Scheduling on
//! Unstructured Meshes* (IPPS 2005):
//!
//! * [`random_delay()`](random_delay()) — Algorithm 1, the `O(log² n)`-approximate
//!   layer-sequential Random Delay algorithm;
//! * [`random_delay_priorities`] — Algorithm 2, the priority-compacted
//!   variant (same guarantee, much better in practice);
//! * [`improved_random_delay`] — Algorithm 3, Graham-preprocessed delays
//!   with the `O(log m · log log log m)` expected guarantee;
//! * [`priorities`] — the Level / Descendant / DFDS heuristics of §5.2,
//!   each composable with random delays;
//! * [`list_schedule()`](list_schedule()) — the shared priority list-scheduling engine;
//! * [`metrics`] — the communication measures C1 and C2;
//! * [`bounds`] — lower bounds (`max{nk/m, k, D}` and a Graham witness);
//! * [`concentration`] — Chernoff/balls-in-bins helpers mirroring
//!   Lemma 1 and equation (3), plus empirical congestion probes for
//!   Lemmas 2–3;
//! * [`validate`] — an independent feasibility oracle for the three
//!   sweep-scheduling constraints.
//!
//! ```
//! use sweep_dag::SweepInstance;
//! use sweep_core::{Algorithm, Assignment, validate, lower_bounds};
//!
//! let inst = SweepInstance::random_layered(200, 8, 12, 2, 1);
//! let assignment = Assignment::random_cells(200, 16, 2);
//! let schedule = Algorithm::RandomDelayPriorities.run(&inst, assignment, 3);
//! validate(&inst, &schedule).unwrap();
//! let lb = lower_bounds(&inst, 16);
//! assert!(schedule.makespan() as u64 >= lb.best());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod algorithms;
pub mod assignment;
pub mod bounds;
pub mod concentration;
pub mod gantt;
pub mod improved;
pub mod kba;
pub mod list_schedule;
pub mod metrics;
pub mod opt;
pub mod priorities;
pub mod random_delay;
pub mod replicate;
pub mod schedule;
pub mod scratch;
pub mod trials;
pub mod weighted;

pub use algorithms::Algorithm;
pub use assignment::Assignment;
pub use bounds::{approx_ratio, lower_bounds, LowerBounds};
pub use concentration::{
    balls_in_bins_h, chernoff_f, chernoff_g, layer_congestion, CongestionStats,
};
pub use gantt::{from_csv, render_gantt, timelines, to_csv};
pub use improved::{
    graham_steps, graham_union_steps, improved_random_delay, improved_with_priorities,
};
pub use kba::{kba_assignment, processor_grid};
pub use list_schedule::{compact, greedy_schedule, list_schedule};
pub use metrics::{c1_interprocessor_edges, c2_comm_delay, cut_fraction, idle_slots, load_profile};
pub use opt::{optimal_makespan_fixed_assignment, optimal_sweep_makespan};
pub use priorities::{
    descendant_priorities, dfds_priorities, level_priorities, schedule_with_priorities,
    PriorityScheme,
};
pub use random_delay::{
    delayed_level_priorities, random_delay, random_delay_priorities, random_delay_priorities_with,
    random_delay_with, random_delays, random_delays_into,
};
pub use replicate::{replicate, AssignmentDraw, ReplicateSummary};
pub use schedule::{validate, Schedule, ScheduleBuildError, ScheduleViolation};
pub use scratch::{TrialContext, TrialScratch};
pub use trials::{
    best_of_trials, best_of_trials_seq, best_of_trials_with_pool, trial_seeds, BestOfTrials,
    TrialOutcome,
};
pub use weighted::{
    validate_weighted, weighted_list_schedule, weighted_lower_bound,
    weighted_random_delay_priorities, WeightedSchedule, WeightedViolation,
};
