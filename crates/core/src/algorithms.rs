//! Unified front-end over every scheduler in the paper — the experiment
//! harness and examples dispatch through [`Algorithm`] so all algorithms
//! are driven identically.

use sweep_dag::{DescendantMode, SweepInstance};

use crate::assignment::Assignment;
use crate::improved::{improved_random_delay, improved_with_priorities};
use crate::list_schedule::greedy_schedule;
use crate::priorities::{schedule_with_priorities, PriorityScheme};
use crate::random_delay::{random_delay, random_delay_priorities};
use crate::schedule::Schedule;

/// Every scheduling algorithm studied in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1: layer-sequential random delays.
    RandomDelay,
    /// Algorithm 2: random delays as list-scheduling priorities (the
    /// paper's headline practical algorithm).
    RandomDelayPriorities,
    /// Algorithm 3: Graham-preprocessed random delays (layer-sequential).
    ImprovedRandomDelay,
    /// Algorithm 3 with priority compaction.
    ImprovedWithPriorities,
    /// Greedy FIFO list scheduling (no priorities, no delays).
    Greedy,
    /// Level priorities (§5.2), optionally with random delays.
    LevelPriority {
        /// Compose per-direction random delays.
        delays: bool,
    },
    /// Descendant priorities (Plimpton et al.), optionally with delays.
    DescendantPriority {
        /// Compose per-direction random delays.
        delays: bool,
    },
    /// DFDS priorities (Pautz), optionally with delays.
    Dfds {
        /// Compose per-direction random delays.
        delays: bool,
    },
}

impl Algorithm {
    /// The algorithms compared in §5.2, in presentation order.
    pub const COMPARISON_SET: [Algorithm; 8] = [
        Algorithm::RandomDelay,
        Algorithm::RandomDelayPriorities,
        Algorithm::Greedy,
        Algorithm::LevelPriority { delays: false },
        Algorithm::DescendantPriority { delays: false },
        Algorithm::DescendantPriority { delays: true },
        Algorithm::Dfds { delays: false },
        Algorithm::Dfds { delays: true },
    ];

    /// Short name for tables and CSV output.
    pub fn name(&self) -> String {
        match self {
            Algorithm::RandomDelay => "random_delay".into(),
            Algorithm::RandomDelayPriorities => "random_delay_prio".into(),
            Algorithm::ImprovedRandomDelay => "improved_random_delay".into(),
            Algorithm::ImprovedWithPriorities => "improved_prio".into(),
            Algorithm::Greedy => "greedy".into(),
            Algorithm::LevelPriority { delays } => {
                format!("level{}", if *delays { "+delays" } else { "" })
            }
            Algorithm::DescendantPriority { delays } => {
                format!("descendant{}", if *delays { "+delays" } else { "" })
            }
            Algorithm::Dfds { delays } => {
                format!("dfds{}", if *delays { "+delays" } else { "" })
            }
        }
    }

    /// Runs the algorithm. `seed` drives the random-delay draw (where the
    /// algorithm uses one); the processor assignment is supplied by the
    /// caller so that communication costs are comparable across algorithms
    /// (§5.2 fixes the block assignment and compares makespans).
    pub fn run(&self, instance: &SweepInstance, assignment: Assignment, seed: u64) -> Schedule {
        match self {
            Algorithm::RandomDelay => random_delay(instance, assignment, seed),
            Algorithm::RandomDelayPriorities => random_delay_priorities(instance, assignment, seed),
            Algorithm::ImprovedRandomDelay => improved_random_delay(instance, assignment, seed),
            Algorithm::ImprovedWithPriorities => {
                improved_with_priorities(instance, assignment, seed)
            }
            Algorithm::Greedy => greedy_schedule(instance, assignment),
            Algorithm::LevelPriority { delays } => schedule_with_priorities(
                instance,
                assignment,
                PriorityScheme::Level,
                delays.then_some(seed),
            ),
            Algorithm::DescendantPriority { delays } => schedule_with_priorities(
                instance,
                assignment,
                PriorityScheme::Descendant(DescendantMode::Approximate),
                delays.then_some(seed),
            ),
            Algorithm::Dfds { delays } => schedule_with_priorities(
                instance,
                assignment,
                PriorityScheme::Dfds,
                delays.then_some(seed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;

    #[test]
    fn every_algorithm_is_feasible_and_named() {
        let inst = SweepInstance::random_layered(50, 4, 6, 2, 9);
        let mut algos = Algorithm::COMPARISON_SET.to_vec();
        algos.push(Algorithm::ImprovedRandomDelay);
        algos.push(Algorithm::ImprovedWithPriorities);
        let mut names = std::collections::HashSet::new();
        for alg in algos {
            let a = Assignment::random_cells(50, 6, 1);
            let s = alg.run(&inst, a, 2);
            validate(&inst, &s).unwrap();
            assert!(names.insert(alg.name()), "duplicate name {}", alg.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::RandomDelay.name(), "random_delay");
        assert_eq!(Algorithm::Dfds { delays: true }.name(), "dfds+delays");
        assert_eq!(Algorithm::LevelPriority { delays: false }.name(), "level");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 4);
        let a = Assignment::random_cells(40, 4, 5);
        let s1 = Algorithm::RandomDelayPriorities.run(&inst, a.clone(), 6);
        let s2 = Algorithm::RandomDelayPriorities.run(&inst, a, 6);
        assert_eq!(s1.starts(), s2.starts());
    }
}
