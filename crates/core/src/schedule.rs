//! Schedule representation and independent feasibility validation.
//!
//! A [`Schedule`] assigns every task `(v, i)` a start timestep (all tasks
//! take unit time, `p = 1`) and owns the cell → processor [`Assignment`]
//! it was built for. [`validate`] re-checks the paper's three feasibility
//! constraints from scratch, so tests can verify *any* scheduler against an
//! implementation-independent oracle.

use sweep_dag::{SweepInstance, TaskId};

use crate::assignment::Assignment;

/// A feasible (or to-be-validated) sweep schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Start time per task, indexed by `TaskId::index()` (`dir·n + cell`).
    start: Vec<u32>,
    /// The cell → processor assignment the schedule runs under.
    assignment: Assignment,
    makespan: u32,
}

/// A malformed [`Schedule`] construction, reported as a typed error so
/// bad inputs flow into the diagnostics pipeline (`sweep-analyze`)
/// instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleBuildError {
    /// `start.len()` is not a multiple of the assignment's cell count
    /// (a schedule must cover exactly `n·k` tasks for some integer `k`).
    StartCountMismatch {
        /// Number of start entries supplied.
        starts: usize,
        /// Cells covered by the assignment.
        cells: usize,
    },
}

impl std::fmt::Display for ScheduleBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleBuildError::StartCountMismatch { starts, cells } => write!(
                f,
                "{starts} start times cannot cover k direction copies of {cells} cells \
                 (need a multiple of the cell count)"
            ),
        }
    }
}

impl std::error::Error for ScheduleBuildError {}

impl Schedule {
    /// Bundles start times with their assignment. The makespan is derived.
    ///
    /// Returns a typed error when `start.len()` is not a multiple of the
    /// assignment's cell count (it must be `n·k`), so untrusted inputs
    /// (CSV imports, corrupted schedules under analysis) surface as
    /// diagnostics rather than panics.
    pub fn new(start: Vec<u32>, assignment: Assignment) -> Result<Schedule, ScheduleBuildError> {
        let n = assignment.num_cells();
        if !(n == 0 && start.is_empty() || n > 0 && start.len().is_multiple_of(n)) {
            return Err(ScheduleBuildError::StartCountMismatch {
                starts: start.len(),
                cells: n,
            });
        }
        let makespan = start.iter().map(|&t| t + 1).max().unwrap_or(0);
        Ok(Schedule {
            start,
            assignment,
            makespan,
        })
    }

    /// [`Schedule::new`] for schedulers whose output shape is correct by
    /// construction.
    ///
    /// # Panics
    /// Panics when `start.len()` is not a multiple of the cell count.
    pub fn new_checked(start: Vec<u32>, assignment: Assignment) -> Schedule {
        Schedule::new(start, assignment).expect("scheduler emitted n·k start times")
    }

    /// Start time of a task.
    #[inline]
    pub fn start_of(&self, t: TaskId) -> u32 {
        self.start[t.index()]
    }

    /// All start times (indexed by `TaskId::index`).
    #[inline]
    pub fn starts(&self) -> &[u32] {
        &self.start
    }

    /// Processor of a task (determined by its cell).
    #[inline]
    pub fn proc_of_cell(&self, v: u32) -> u32 {
        self.assignment.proc_of(v)
    }

    /// The underlying assignment.
    #[inline]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Number of unit timesteps used — the objective of §4.
    #[inline]
    pub fn makespan(&self) -> u32 {
        self.makespan
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.assignment.num_procs()
    }

    /// Fraction of processor-timestep slots doing useful work:
    /// `n·k / (m · makespan)`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.start.len() as f64 / (self.num_procs() as f64 * self.makespan as f64)
    }
}

/// A violated feasibility constraint, with enough context to debug the
/// offending scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// `start.len() != n·k`.
    WrongTaskCount {
        /// Expected `n·k`.
        expected: usize,
        /// Actual number of start entries.
        actual: usize,
    },
    /// Precedence violated: `(u, dir)` must finish before `(v, dir)` starts.
    Precedence {
        /// The direction whose DAG is violated.
        dir: u32,
        /// Upstream cell.
        u: u32,
        /// Downstream cell.
        v: u32,
        /// Start time of `(u, dir)`.
        start_u: u32,
        /// Start time of `(v, dir)`.
        start_v: u32,
    },
    /// Two tasks share a processor-timestep slot.
    ProcessorConflict {
        /// The double-booked processor.
        proc: u32,
        /// The conflicting timestep.
        time: u32,
    },
    /// The assignment covers a different number of cells than the instance.
    AssignmentMismatch {
        /// Cells in the instance.
        cells: usize,
        /// Cells covered by the assignment.
        assigned: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::WrongTaskCount { expected, actual } => {
                write!(f, "expected {expected} tasks, schedule has {actual}")
            }
            ScheduleViolation::Precedence {
                dir,
                u,
                v,
                start_u,
                start_v,
            } => write!(
                f,
                "direction {dir}: cell {u} (t={start_u}) must finish before cell {v} (t={start_v})"
            ),
            ScheduleViolation::ProcessorConflict { proc, time } => {
                write!(f, "processor {proc} runs two tasks at time {time}")
            }
            ScheduleViolation::AssignmentMismatch { cells, assigned } => {
                write!(
                    f,
                    "instance has {cells} cells but assignment covers {assigned}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Checks the three feasibility constraints of §3 against `instance`:
/// precedence within every DAG, one task per processor per timestep, and
/// (by construction of [`Schedule`]) one processor per cell. Runs in
/// `O(n·k + edges)` time.
pub fn validate(instance: &SweepInstance, schedule: &Schedule) -> Result<(), ScheduleViolation> {
    let n = instance.num_cells();
    let k = instance.num_directions();
    if schedule.assignment().num_cells() != n {
        return Err(ScheduleViolation::AssignmentMismatch {
            cells: n,
            assigned: schedule.assignment().num_cells(),
        });
    }
    if schedule.starts().len() != n * k {
        return Err(ScheduleViolation::WrongTaskCount {
            expected: n * k,
            actual: schedule.starts().len(),
        });
    }
    // Constraint 1: precedence. Unit tasks ⇒ start(v) ≥ start(u) + 1.
    for (i, dag) in instance.dags().iter().enumerate() {
        for (u, v) in dag.edges() {
            let su = schedule.start_of(TaskId::pack(u, i as u32, n));
            let sv = schedule.start_of(TaskId::pack(v, i as u32, n));
            if sv <= su {
                return Err(ScheduleViolation::Precedence {
                    dir: i as u32,
                    u,
                    v,
                    start_u: su,
                    start_v: sv,
                });
            }
        }
    }
    // Constraint 2: one task per processor-timestep. Count slots.
    let m = schedule.num_procs();
    let mut slots: Vec<(u32, u32)> = Vec::with_capacity(n * k);
    for dir in 0..k as u32 {
        for v in 0..n as u32 {
            let t = schedule.start_of(TaskId::pack(v, dir, n));
            slots.push((t, schedule.proc_of_cell(v)));
        }
    }
    slots.sort_unstable();
    for w in slots.windows(2) {
        if w[0] == w[1] {
            return Err(ScheduleViolation::ProcessorConflict {
                proc: w[0].1,
                time: w[0].0,
            });
        }
    }
    let _ = m;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_dag::TaskDag;

    /// n=2 cells, k=1 direction, edge 0 -> 1.
    fn tiny_instance() -> SweepInstance {
        SweepInstance::new(2, vec![TaskDag::from_edges(2, &[(0, 1)])], "tiny")
    }

    #[test]
    fn valid_schedule_passes() {
        let inst = tiny_instance();
        let a = Assignment::single(2);
        let s = Schedule::new_checked(vec![0, 1], a);
        assert_eq!(s.makespan(), 2);
        validate(&inst, &s).unwrap();
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precedence_violation_detected() {
        let inst = tiny_instance();
        let a = Assignment::from_vec(vec![0, 1], 2);
        let s = Schedule::new_checked(vec![1, 0], a); // 1 before 0: violates 0 -> 1
        let err = validate(&inst, &s).unwrap_err();
        assert!(matches!(
            err,
            ScheduleViolation::Precedence { u: 0, v: 1, .. }
        ));
    }

    #[test]
    fn simultaneous_start_violates_precedence() {
        let inst = tiny_instance();
        let a = Assignment::from_vec(vec![0, 1], 2);
        let s = Schedule::new_checked(vec![0, 0], a);
        assert!(matches!(
            validate(&inst, &s),
            Err(ScheduleViolation::Precedence { .. })
        ));
    }

    #[test]
    fn processor_conflict_detected() {
        // Two independent cells on the same processor at the same time.
        let inst = SweepInstance::new(2, vec![TaskDag::edgeless(2)], "i");
        let a = Assignment::single(2);
        let s = Schedule::new_checked(vec![0, 0], a);
        let err = validate(&inst, &s).unwrap_err();
        assert_eq!(
            err,
            ScheduleViolation::ProcessorConflict { proc: 0, time: 0 }
        );
        assert!(err.to_string().contains("processor 0"));
    }

    #[test]
    fn wrong_task_count_detected() {
        let inst = SweepInstance::new(2, vec![TaskDag::edgeless(2), TaskDag::edgeless(2)], "i");
        let a = Assignment::single(2);
        let s = Schedule::new_checked(vec![0, 1], a); // k=2 needs 4 starts
        assert!(matches!(
            validate(&inst, &s),
            Err(ScheduleViolation::WrongTaskCount {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn assignment_mismatch_detected() {
        let inst = tiny_instance();
        let a = Assignment::single(3);
        let s = Schedule::new_checked(vec![0, 1, 2], a);
        assert!(matches!(
            validate(&inst, &s),
            Err(ScheduleViolation::AssignmentMismatch {
                cells: 2,
                assigned: 3
            })
        ));
    }

    #[test]
    fn makespan_is_last_finish() {
        let a = Assignment::single(3);
        let s = Schedule::new_checked(vec![0, 5, 2], a);
        assert_eq!(s.makespan(), 6);
    }

    #[test]
    fn empty_schedule() {
        let a = Assignment::single(0);
        let s = Schedule::new_checked(vec![], a);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.utilization(), 1.0);
    }
}
