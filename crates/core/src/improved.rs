//! The paper's Algorithm 3 ("Improved Random Delay") and the Graham greedy
//! list schedule it uses for preprocessing.
//!
//! The preprocessing step runs the classical Graham list schedule on the
//! disjoint union `H` of all per-direction DAGs with `m` identical machines
//! — crucially *without* the same-processor-per-cell constraint. The step
//! at which each task completes defines new levels `L'_{i,j}` whose widths
//! are at most `m`; random delays and layer-sequential processing are then
//! applied to these narrowed levels. The narrowing is what enables the
//! `O(log m · log log log m)` analysis (Theorem 3).

use sweep_dag::{BitSet, SweepInstance, TaskDag, TaskId};
use sweep_telemetry as telemetry;

use crate::assignment::Assignment;
use crate::list_schedule::list_schedule;
use crate::random_delay::random_delays;
use crate::schedule::Schedule;

/// Graham's greedy list schedule of one DAG on `m` identical machines
/// (lowest task id first among ready tasks). Returns the completion
/// step of every node (0-based) and the makespan in steps. This is the
/// classical `(2 − 1/m)`-approximation of [Graham et al.], used both by
/// Algorithm 3 and as a lower-bound witness ([`crate::bounds`]).
///
/// The ready frontier is a word-packed [`BitSet`]: the per-step batch
/// is the `m` lowest set bits, tasks readied this step accumulate in a
/// second set and merge in with one bulk `or` per 64 ids. Any greedy
/// tie-break yields the same `(2 − 1/m)` bound; lowest-id is the one
/// that makes the frontier a bitset instead of a queue.
pub fn graham_steps(dag: &TaskDag, m: usize) -> (Vec<u32>, u32) {
    assert!(m > 0);
    let n = dag.num_nodes();
    let mut step = vec![0u32; n];
    if n == 0 {
        return (step, 0);
    }
    let mut indeg: Vec<u32> = (0..n as u32).map(|v| dag.in_degree(v)).collect();
    let mut ready = BitSet::new(n);
    for (v, &d) in indeg.iter().enumerate() {
        if d == 0 {
            ready.insert(v);
        }
    }
    let mut next_ready = BitSet::new(n);
    let mut batch: Vec<u32> = Vec::with_capacity(m.min(n));
    let mut t = 0u32;
    let mut done = 0usize;
    while done < n {
        debug_assert!(!ready.is_empty(), "acyclic DAG always has ready tasks");
        // Run the m lowest-id ready tasks this step.
        batch.clear();
        batch.extend(ready.ones().take(m).map(|v| v as u32));
        for &v in &batch {
            ready.remove(v as usize);
            step[v as usize] = t;
            done += 1;
            for &w in dag.successors(v) {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    next_ready.insert(w as usize);
                }
            }
        }
        ready.union_with(&next_ready);
        next_ready.clear();
        t += 1;
    }
    (step, t)
}

/// Graham preprocessing on the union DAG `H` (step 1 of Algorithm 3):
/// the union is a disjoint union, so each direction can be scheduled
/// independently *per machine-step budget*… except machines are shared.
/// We therefore schedule the true union: one global FIFO over all `n·k`
/// tasks. Returns `steps[task]` (indexed by `TaskId::index`) and the
/// makespan `T`.
pub fn graham_union_steps(instance: &SweepInstance, m: usize) -> (Vec<u32>, u32) {
    let _span = telemetry::span!("sched.improved.graham");
    assert!(m > 0);
    let n = instance.num_cells();
    let k = instance.num_directions();
    let mut step = vec![0u32; n * k];
    if n == 0 {
        return (step, 0);
    }
    let mut indeg = vec![0u32; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        for v in 0..n as u32 {
            indeg[TaskId::pack(v, i as u32, n).index()] = dag.in_degree(v);
        }
    }
    // Same bitset frontier as `graham_steps`, over the n·k union space.
    let mut ready = BitSet::new(n * k);
    for (t, &d) in indeg.iter().enumerate() {
        if d == 0 {
            ready.insert(t);
        }
    }
    let mut next_ready = BitSet::new(n * k);
    let mut batch: Vec<u64> = Vec::with_capacity(m.min(n * k));
    let mut t = 0u32;
    let mut done = 0usize;
    while done < n * k {
        debug_assert!(!ready.is_empty());
        batch.clear();
        batch.extend(ready.ones().take(m).map(|task| task as u64));
        for &task in &batch {
            ready.remove(task as usize);
            step[task as usize] = t;
            done += 1;
            let (v, dir) = TaskId(task).unpack(n);
            for &w in instance.dag(dir as usize).successors(v) {
                let wt = TaskId::pack(w, dir, n).index();
                indeg[wt] -= 1;
                if indeg[wt] == 0 {
                    next_ready.insert(wt);
                }
            }
        }
        ready.union_with(&next_ready);
        next_ready.clear();
        t += 1;
    }
    (step, t)
}

/// **Algorithm 3 — Improved Random Delay.** Graham preprocessing, then
/// random delays over the narrowed levels, then layer-sequential
/// processing (as Algorithm 1, but on layers `L''`).
pub fn improved_random_delay(
    instance: &SweepInstance,
    assignment: Assignment,
    seed: u64,
) -> Schedule {
    let delays = random_delays(instance.num_directions(), seed);
    improved_random_delay_with(instance, assignment, &delays)
}

/// Algorithm 3 with explicit delays.
pub fn improved_random_delay_with(
    instance: &SweepInstance,
    assignment: Assignment,
    delays: &[u32],
) -> Schedule {
    let _span = telemetry::span!("sched.improved");
    let prio = improved_priorities(instance, assignment.num_procs(), delays);
    layer_sequential_by(instance, assignment, &prio)
}

/// Practical variant: the narrowed levels are used as *priorities* for
/// list scheduling instead of hard layer barriers (the same compaction
/// trick that turns Algorithm 1 into Algorithm 2).
pub fn improved_with_priorities(
    instance: &SweepInstance,
    assignment: Assignment,
    seed: u64,
) -> Schedule {
    let _span = telemetry::span!("sched.improved");
    let delays = random_delays(instance.num_directions(), seed);
    let prio = improved_priorities(instance, assignment.num_procs(), delays.as_slice());
    list_schedule(instance, assignment, &prio, None)
}

/// The combined-layer index `step_i(v) + X_i` of every task under
/// Algorithm 3's preprocessing.
pub fn improved_priorities(instance: &SweepInstance, m: usize, delays: &[u32]) -> Vec<i64> {
    let n = instance.num_cells();
    let k = instance.num_directions();
    assert_eq!(delays.len(), k, "one delay per direction");
    let (steps, _t) = graham_union_steps(instance, m);
    let mut prio = vec![0i64; n * k];
    for dir in 0..k as u32 {
        for v in 0..n as u32 {
            let idx = TaskId::pack(v, dir, n).index();
            prio[idx] = steps[idx] as i64 + delays[dir as usize] as i64;
        }
    }
    prio
}

/// Layer-sequential processing of arbitrary integer layers (the combined
/// layers must be a *valid* layering: every edge goes to a strictly larger
/// layer, which holds for level+delay and Graham-step+delay layerings).
fn layer_sequential_by(
    instance: &SweepInstance,
    assignment: Assignment,
    layer_of: &[i64],
) -> Schedule {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let m = assignment.num_procs();
    let mut start = vec![0u32; n * k];
    if n == 0 {
        return Schedule::new_checked(start, assignment);
    }
    // Order tasks by layer, then process layers sequentially.
    let mut order: Vec<u64> = (0..(n * k) as u64).collect();
    order.sort_unstable_by_key(|&t| layer_of[t as usize]);
    let mut next_slot = vec![0u32; m];
    let mut clock = 0u32;
    let mut idx = 0usize;
    while idx < order.len() {
        let layer = layer_of[order[idx] as usize];
        next_slot.iter_mut().for_each(|s| *s = clock);
        let mut span = 0u32;
        while idx < order.len() && layer_of[order[idx] as usize] == layer {
            let t = order[idx];
            let v = (t % n as u64) as u32;
            let p = assignment.proc_of(v) as usize;
            start[t as usize] = next_slot[p];
            next_slot[p] += 1;
            span = span.max(next_slot[p] - clock);
            idx += 1;
        }
        clock += span;
    }
    Schedule::new_checked(start, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_delay::random_delay_with;
    use crate::schedule::validate;

    #[test]
    fn graham_on_chain_is_sequential() {
        let dag = TaskDag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (steps, t) = graham_steps(&dag, 4);
        assert_eq!(t, 5);
        assert_eq!(steps, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn graham_on_independent_tasks_packs_m_per_step() {
        let dag = TaskDag::edgeless(10);
        let (_, t) = graham_steps(&dag, 4);
        assert_eq!(t, 3); // ceil(10/4)
        let (_, t1) = graham_steps(&dag, 1);
        assert_eq!(t1, 10);
    }

    #[test]
    fn graham_respects_precedence() {
        let dag = TaskDag::from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]);
        let (steps, _) = graham_steps(&dag, 2);
        for (u, v) in dag.edges() {
            assert!(steps[u as usize] < steps[v as usize]);
        }
    }

    #[test]
    fn graham_is_within_two_of_lower_bounds() {
        // Graham ≤ (2 - 1/m)·OPT and OPT ≥ max(n/m, critical path).
        let inst = SweepInstance::random_layered(120, 1, 10, 3, 5);
        let dag = inst.dag(0);
        let m = 4;
        let (_, t) = graham_steps(dag, m);
        let lb = (dag.num_nodes() as u32)
            .div_ceil(m as u32)
            .max(sweep_dag::critical_path_len(dag) as u32);
        assert!(t <= 2 * lb, "graham {t} vs lb {lb}");
    }

    #[test]
    fn union_steps_have_width_at_most_m() {
        let inst = SweepInstance::random_layered(60, 4, 6, 2, 8);
        let m = 7;
        let (steps, t) = graham_union_steps(&inst, m);
        let mut width = vec![0usize; t as usize];
        for &s in &steps {
            width[s as usize] += 1;
        }
        assert!(width.iter().all(|&w| w <= m), "some step wider than m");
        assert_eq!(width.iter().sum::<usize>(), inst.num_tasks());
    }

    #[test]
    fn improved_schedules_are_feasible() {
        for seed in 0..5u64 {
            let inst = SweepInstance::random_layered(70, 4, 7, 2, seed);
            let a = Assignment::random_cells(70, 6, seed ^ 3);
            let s = improved_random_delay(&inst, a.clone(), seed);
            validate(&inst, &s).unwrap();
            let s2 = improved_with_priorities(&inst, a, seed);
            validate(&inst, &s2).unwrap();
        }
    }

    #[test]
    fn improved_with_priorities_not_worse_in_practice() {
        let inst = SweepInstance::random_layered(100, 5, 8, 2, 1);
        let a = Assignment::random_cells(100, 8, 2);
        let delays = random_delays(5, 3);
        let s1 = improved_random_delay_with(&inst, a.clone(), &delays);
        let prio = improved_priorities(&inst, 8, &delays);
        let s2 = list_schedule(&inst, a, &prio, None);
        assert!(s2.makespan() <= s1.makespan());
    }

    #[test]
    fn improved_layering_is_a_valid_layering() {
        // Every edge must go to a strictly larger combined layer.
        let inst = SweepInstance::random_layered(50, 3, 6, 2, 4);
        let delays = random_delays(3, 5);
        let prio = improved_priorities(&inst, 4, &delays);
        let n = inst.num_cells();
        for (i, dag) in inst.dags().iter().enumerate() {
            for (u, v) in dag.edges() {
                let pu = prio[TaskId::pack(u, i as u32, n).index()];
                let pv = prio[TaskId::pack(v, i as u32, n).index()];
                assert!(pu < pv, "edge ({u},{v}) dir {i}: {pu} !< {pv}");
            }
        }
    }

    #[test]
    fn preprocessing_narrows_wide_instances() {
        // A very wide single-layer instance: raw levels put everything in
        // one layer of width n, Graham narrows to width m.
        let inst = SweepInstance::new(64, vec![TaskDag::edgeless(64)], "wide");
        let (steps, t) = graham_union_steps(&inst, 8);
        assert_eq!(t, 8); // 64 tasks / 8 machines
        let mut per_step = [0; 8];
        for &s in &steps {
            per_step[s as usize] += 1;
        }
        assert!(per_step.iter().all(|&w| w == 8));
    }

    #[test]
    fn random_delay_comparable_reference() {
        // Algorithm 3 should be in the same ballpark as Algorithm 1 on
        // benign instances (both are layer-sequential).
        let inst = SweepInstance::random_layered(90, 4, 6, 2, 6);
        let a = Assignment::random_cells(90, 8, 7);
        let delays = random_delays(4, 8);
        let s1 = random_delay_with(&inst, a.clone(), &delays);
        let s3 = improved_random_delay_with(&inst, a, &delays);
        validate(&inst, &s3).unwrap();
        // Loose sanity envelope (not a theorem, a regression tripwire).
        assert!(s3.makespan() <= 3 * s1.makespan().max(1));
    }
}
