//! Lower bounds on the optimal sweep makespan.
//!
//! The paper's analysis uses `OPT ≥ max{nk/m, k, D}` (proof of Lemma 4)
//! and its experiments compare against `nk/m` ("Lower Bound of the
//! Makespan", §5). Two further sound bounds are implemented:
//!
//! * **per-cell serialization** — all `k` copies of a cell share one
//!   processor, so `OPT ≥ k` (subsumed by the paper's `k` bound, listed
//!   separately for clarity);
//! * **Graham witness** — relaxing the same-processor constraint can only
//!   help, so `OPT_sweep ≥ OPT_relaxed ≥ graham/(2 − 1/m)` where `graham`
//!   is the greedy makespan of the union DAG on `m` machines \[Graham\].

use sweep_dag::SweepInstance;

use crate::improved::graham_union_steps;

/// The individual lower bounds for an instance on `m` processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBounds {
    /// `⌈nk/m⌉` — average load per processor.
    pub avg_load: u64,
    /// `k` — each cell's copies serialize on one processor.
    pub directions: u64,
    /// `D` — the deepest critical path over all directions.
    pub depth: u64,
    /// `⌈graham · m / (2m − 1)⌉` — Graham-witness bound on the relaxed
    /// problem.
    pub graham: u64,
}

impl LowerBounds {
    /// The best (largest) of the bounds.
    pub fn best(&self) -> u64 {
        self.avg_load
            .max(self.directions)
            .max(self.depth)
            .max(self.graham)
    }

    /// The paper's bound `max{nk/m, k, D}` (without the Graham witness) —
    /// what the experimental sections normalize against.
    pub fn paper(&self) -> u64 {
        self.avg_load.max(self.directions).max(self.depth)
    }
}

/// Computes all lower bounds. `O(n·k + edges)`.
///
/// ```
/// use sweep_core::lower_bounds;
/// use sweep_dag::SweepInstance;
///
/// let inst = SweepInstance::identical_chains(20, 4); // 80 tasks, depth 20
/// let lb = lower_bounds(&inst, 8);
/// assert_eq!(lb.avg_load, 10);    // ⌈80/8⌉
/// assert_eq!(lb.depth, 20);       // the chain
/// assert_eq!(lb.best(), 20);
/// ```
///
/// # Panics
/// Panics when `m == 0`.
pub fn lower_bounds(instance: &SweepInstance, m: usize) -> LowerBounds {
    assert!(m > 0, "need at least one processor");
    let nk = instance.num_tasks() as u64;
    let avg_load = nk.div_ceil(m as u64);
    let directions = instance.num_directions() as u64;
    let depth = instance.max_depth() as u64;
    let (_, graham_t) = graham_union_steps(instance, m);
    // graham ≤ (2 - 1/m)·OPT  ⇒  OPT ≥ graham·m/(2m - 1).
    let graham = (graham_t as u64 * m as u64).div_ceil(2 * m as u64 - 1);
    LowerBounds {
        avg_load,
        directions,
        depth,
        graham,
    }
}

/// Convenience: the ratio of a makespan to the paper's lower bound
/// (`nk/m`-style), the quantity plotted in Figures 2–3.
pub fn approx_ratio(instance: &SweepInstance, m: usize, makespan: u32) -> f64 {
    let lb = lower_bounds(instance, m).paper();
    if lb == 0 {
        return 1.0;
    }
    makespan as f64 / lb as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::list_schedule::greedy_schedule;
    use crate::random_delay::random_delay_priorities;
    use sweep_dag::TaskDag;

    #[test]
    fn bounds_on_chain_instance() {
        let inst = SweepInstance::identical_chains(20, 4);
        let b = lower_bounds(&inst, 8);
        assert_eq!(b.avg_load, 10); // 80/8
        assert_eq!(b.directions, 4);
        assert_eq!(b.depth, 20);
        assert!(b.graham >= 20 / 2);
        assert_eq!(b.paper(), 20);
        assert!(b.best() >= 20);
    }

    #[test]
    fn single_processor_bound_is_exact() {
        let inst = SweepInstance::random_layered(30, 3, 4, 2, 1);
        let b = lower_bounds(&inst, 1);
        assert_eq!(b.avg_load, 90);
        // m = 1: graham bound = graham makespan = nk.
        assert_eq!(b.graham, 90);
        let s = greedy_schedule(&inst, Assignment::single(30));
        assert_eq!(s.makespan() as u64, b.best());
    }

    #[test]
    fn every_schedule_respects_the_bounds() {
        for seed in 0..5u64 {
            let inst = SweepInstance::random_layered(60, 4, 6, 2, seed);
            for m in [2usize, 4, 16] {
                let b = lower_bounds(&inst, m);
                let a = Assignment::random_cells(60, m, seed);
                let s = random_delay_priorities(&inst, a, seed);
                assert!(
                    s.makespan() as u64 >= b.best(),
                    "makespan {} below lower bound {}",
                    s.makespan(),
                    b.best()
                );
            }
        }
    }

    #[test]
    fn graham_bound_dominates_on_wide_shallow_instances() {
        // Wide instance with one dependency layer: depth small, k small,
        // avg load the binding constraint; graham should agree with it.
        let inst = SweepInstance::new(64, vec![TaskDag::edgeless(64)], "wide");
        let b = lower_bounds(&inst, 8);
        assert_eq!(b.avg_load, 8);
        assert!(b.graham >= 5); // graham = 8 steps ⇒ 8·8/15 = 4.27 → 5
    }

    #[test]
    fn approx_ratio_normalizes() {
        let inst = SweepInstance::identical_chains(10, 2);
        let r = approx_ratio(&inst, 4, 20);
        assert!((r - 2.0).abs() < 1e-12); // lb = depth = 10
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        lower_bounds(&SweepInstance::identical_chains(4, 1), 0);
    }
}
