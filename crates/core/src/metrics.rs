//! Communication-cost measures from §5 ("Objective functions").
//!
//! * **C1** — static cost: the number of DAG edges `((u,i),(v,i))` whose
//!   endpoint cells live on different processors. Depends only on the
//!   assignment.
//! * **C2** — per-step cost: after each computation step there is one
//!   round of communication taking as long as the *maximum number of
//!   messages any processor has to send* (its off-processor out-degree at
//!   that step); `C2` is the sum of these maxima over all steps. Depends
//!   on the full schedule.

use sweep_dag::{SweepInstance, TaskId};

use crate::assignment::Assignment;
use crate::schedule::Schedule;

/// C1: total number of interprocessor edges over all directions.
pub fn c1_interprocessor_edges(instance: &SweepInstance, assignment: &Assignment) -> u64 {
    assert_eq!(assignment.num_cells(), instance.num_cells());
    let mut c1 = 0u64;
    for dag in instance.dags() {
        for (u, v) in dag.edges() {
            if assignment.proc_of(u) != assignment.proc_of(v) {
                c1 += 1;
            }
        }
    }
    c1
}

/// The fraction of edges that cross processors, `C1 / total_edges`
/// (the paper's observation 1 notes this approaches `(m−1)/m` under
/// per-cell random assignment). Returns 0 for edgeless instances.
pub fn cut_fraction(instance: &SweepInstance, assignment: &Assignment) -> f64 {
    let total = instance.total_edges();
    if total == 0 {
        return 0.0;
    }
    c1_interprocessor_edges(instance, assignment) as f64 / total as f64
}

/// C2: Σ over timesteps of the maximum per-processor number of
/// off-processor messages sent after that step. A message is one cut edge
/// whose source task completes at the step. Runs in `O(C1 log C1)`.
pub fn c2_comm_delay(instance: &SweepInstance, schedule: &Schedule) -> u64 {
    let n = instance.num_cells();
    // Collect (time, sending processor) for every cut edge at the source's
    // completion step.
    let mut events: Vec<(u32, u32)> = Vec::new();
    for (i, dag) in instance.dags().iter().enumerate() {
        for (u, v) in dag.edges() {
            let pu = schedule.proc_of_cell(u);
            if pu != schedule.proc_of_cell(v) {
                events.push((schedule.start_of(TaskId::pack(u, i as u32, n)), pu));
            }
        }
    }
    events.sort_unstable();
    // Sum of per-time maxima of run lengths grouped by (time, proc).
    let mut c2 = 0u64;
    let mut idx = 0usize;
    while idx < events.len() {
        let t = events[idx].0;
        let mut max_in_t = 0u64;
        while idx < events.len() && events[idx].0 == t {
            let p = events[idx].1;
            let mut run = 0u64;
            while idx < events.len() && events[idx] == (t, p) {
                run += 1;
                idx += 1;
            }
            max_in_t = max_in_t.max(run);
        }
        c2 += max_in_t;
    }
    c2
}

/// Per-timestep busy-processor counts (schedule "load profile"): entry `t`
/// is the number of processors running a task at time `t`. Useful for
/// idle-time analysis and plots.
pub fn load_profile(instance: &SweepInstance, schedule: &Schedule) -> Vec<u32> {
    let mut profile = vec![0u32; schedule.makespan() as usize];
    let _ = instance;
    for &t in schedule.starts() {
        profile[t as usize] += 1;
    }
    profile
}

/// Total idle processor-steps: `m · makespan − n·k`.
///
/// Saturates at 0: on an empty schedule (makespan 0, no tasks) the answer
/// is 0, and on an *invalid* schedule that packs more tasks than
/// `m · makespan` slots the difference would go negative — callers probing
/// unchecked schedules get 0 instead of a debug-build underflow panic.
pub fn idle_slots(schedule: &Schedule) -> u64 {
    (schedule.num_procs() as u64 * schedule.makespan() as u64)
        .saturating_sub(schedule.starts().len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_schedule::greedy_schedule;
    use sweep_dag::TaskDag;

    fn two_cell_instance() -> SweepInstance {
        SweepInstance::new(2, vec![TaskDag::from_edges(2, &[(0, 1)])], "i")
    }

    #[test]
    fn c1_counts_cut_edges() {
        let inst = two_cell_instance();
        let same = Assignment::single(2);
        assert_eq!(c1_interprocessor_edges(&inst, &same), 0);
        let split = Assignment::from_vec(vec![0, 1], 2);
        assert_eq!(c1_interprocessor_edges(&inst, &split), 1);
        assert!((cut_fraction(&inst, &split) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn c1_zero_when_single_processor() {
        let inst = SweepInstance::random_layered(50, 3, 5, 2, 1);
        let a = Assignment::single(50);
        assert_eq!(c1_interprocessor_edges(&inst, &a), 0);
    }

    #[test]
    fn c2_simple_case() {
        // 0 -> 1 across processors: the single message is sent when task 0
        // completes; C2 = 1.
        let inst = two_cell_instance();
        let a = Assignment::from_vec(vec![0, 1], 2);
        let s = greedy_schedule(&inst, a);
        assert_eq!(c2_comm_delay(&inst, &s), 1);
    }

    #[test]
    fn c2_takes_max_not_sum_within_a_step() {
        // One source cell with two off-proc successors in one direction:
        // both messages leave the same processor at the same step ⇒ that
        // step contributes 2. Two sources on different procs, one message
        // each, same step ⇒ contributes max = 1.
        let dag = TaskDag::from_edges(3, &[(0, 1), (0, 2)]);
        let inst = SweepInstance::new(3, vec![dag], "fan");
        let a = Assignment::from_vec(vec![0, 1, 1], 2);
        let s = greedy_schedule(&inst, a);
        assert_eq!(c2_comm_delay(&inst, &s), 2);

        let dag2 = TaskDag::from_edges(4, &[(0, 2), (1, 3)]);
        let inst2 = SweepInstance::new(4, vec![dag2], "par");
        let a2 = Assignment::from_vec(vec![0, 1, 1, 0], 2);
        let s2 = greedy_schedule(&inst2, a2);
        // Sources 0 and 1 run at t=0 on different procs; each sends one.
        assert_eq!(c2_comm_delay(&inst2, &s2), 1);
    }

    #[test]
    fn c2_bounded_by_c1() {
        // Each cut edge contributes to exactly one step's max candidate, so
        // C2 ≤ C1 always.
        for seed in 0..4u64 {
            let inst = SweepInstance::random_layered(60, 4, 6, 2, seed);
            let a = Assignment::random_cells(60, 6, seed);
            let s = greedy_schedule(&inst, a.clone());
            assert!(c2_comm_delay(&inst, &s) <= c1_interprocessor_edges(&inst, &a));
        }
    }

    #[test]
    fn random_assignment_cut_fraction_near_m_minus_1_over_m() {
        // Paper §5.1 observation 1.
        let inst = SweepInstance::random_layered(2000, 4, 12, 3, 3);
        let m = 8;
        let a = Assignment::random_cells(2000, m, 5);
        let f = cut_fraction(&inst, &a);
        let expect = (m - 1) as f64 / m as f64;
        assert!((f - expect).abs() < 0.05, "fraction {f} vs {expect}");
    }

    #[test]
    fn load_profile_sums_to_task_count() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 2);
        let a = Assignment::random_cells(40, 4, 1);
        let s = greedy_schedule(&inst, a);
        let profile = load_profile(&inst, &s);
        assert_eq!(
            profile.iter().map(|&x| x as usize).sum::<usize>(),
            inst.num_tasks()
        );
        assert!(profile.iter().all(|&x| x <= 4));
        assert_eq!(
            idle_slots(&s),
            4 * s.makespan() as u64 - inst.num_tasks() as u64
        );
    }

    #[test]
    fn idle_slots_zero_on_empty_schedule() {
        // Regression: `m · makespan − tasks` used to underflow-panic (debug)
        // whenever the product was smaller than the task count; the empty
        // schedule is the simplest such boundary (0·0 − 0).
        let inst = SweepInstance::new(0, vec![TaskDag::edgeless(0)], "empty");
        let s = greedy_schedule(&inst, Assignment::single(0));
        assert_eq!(s.makespan(), 0);
        assert_eq!(idle_slots(&s), 0);
    }

    #[test]
    fn idle_slots_saturates_on_conflicting_schedule() {
        // An unchecked schedule packing two tasks into the same (proc, step)
        // slot has m·makespan = 1 < 2 tasks; the metric must clamp to 0,
        // not wrap around to u64::MAX − 1.
        let s = Schedule::new_checked(vec![0, 0], Assignment::single(2));
        assert_eq!(s.makespan(), 1);
        assert_eq!(idle_slots(&s), 0);
    }
}
