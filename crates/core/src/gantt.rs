//! Schedule inspection: per-processor timelines, ASCII Gantt rendering,
//! and CSV export.
//!
//! Debugging a scheduler almost always starts with "what was processor P
//! doing at time t?" — this module answers that without external tooling.

use sweep_dag::{SweepInstance, TaskId};

use crate::schedule::Schedule;

/// Per-processor timeline: `timeline[p][t]` is the task run by processor
/// `p` at time `t` (`None` = idle).
pub fn timelines(instance: &SweepInstance, schedule: &Schedule) -> Vec<Vec<Option<TaskId>>> {
    let m = schedule.num_procs();
    let span = schedule.makespan() as usize;
    let n = instance.num_cells();
    let mut tl = vec![vec![None; span]; m];
    for dir in 0..instance.num_directions() as u32 {
        for v in 0..n as u32 {
            let task = TaskId::pack(v, dir, n);
            let t = schedule.start_of(task) as usize;
            let p = schedule.proc_of_cell(v) as usize;
            debug_assert!(tl[p][t].is_none(), "feasible schedules have no conflicts");
            tl[p][t] = Some(task);
        }
    }
    tl
}

/// ASCII Gantt chart: one row per processor, `#` busy / `.` idle,
/// compressed to at most `max_cols` columns (each column then covers a
/// time window and shows its busy fraction as `#`, `+`, `-`, `.`).
pub fn render_gantt(instance: &SweepInstance, schedule: &Schedule, max_cols: usize) -> String {
    assert!(max_cols > 0);
    let tl = timelines(instance, schedule);
    let span = schedule.makespan() as usize;
    let mut out = String::new();
    if span == 0 {
        out.push_str("(empty schedule)\n");
        return out;
    }
    let window = span.div_ceil(max_cols);
    let cols = span.div_ceil(window);
    out.push_str(&format!(
        "makespan {} on {} processors ({} step(s) per column)\n",
        span,
        tl.len(),
        window
    ));
    for (p, row) in tl.iter().enumerate() {
        out.push_str(&format!("p{p:<4}|"));
        for c in 0..cols {
            let lo = c * window;
            let hi = ((c + 1) * window).min(span);
            let busy = row[lo..hi].iter().filter(|x| x.is_some()).count();
            let frac = busy as f64 / (hi - lo) as f64;
            out.push(match frac {
                f if f >= 0.999 => '#',
                f if f >= 0.5 => '+',
                f if f > 0.0 => '-',
                _ => '.',
            });
        }
        out.push('\n');
    }
    out
}

/// CSV export of a schedule: `cell,direction,processor,start` per line,
/// with a header. Readable back by any analysis stack.
pub fn to_csv(instance: &SweepInstance, schedule: &Schedule) -> String {
    let n = instance.num_cells();
    let mut out = String::with_capacity(instance.num_tasks() * 16);
    out.push_str("cell,direction,processor,start\n");
    for dir in 0..instance.num_directions() as u32 {
        for v in 0..n as u32 {
            let t = TaskId::pack(v, dir, n);
            out.push_str(&format!(
                "{v},{dir},{},{}\n",
                schedule.proc_of_cell(v),
                schedule.start_of(t)
            ));
        }
    }
    out
}

/// Parses a schedule back from [`to_csv`] output (inverse operation).
/// Returns `(starts indexed by TaskId, proc per cell, m)`.
pub fn from_csv(text: &str, n: usize, k: usize) -> Result<Schedule, String> {
    let mut starts = vec![u32::MAX; n * k];
    let mut proc = vec![u32::MAX; n];
    let mut max_proc = 0u32;
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields", lineno + 1));
        }
        let parse = |s: &str, what: &str| {
            s.trim()
                .parse::<u32>()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
        };
        let (v, dir, p, t) = (
            parse(fields[0], "cell")?,
            parse(fields[1], "direction")?,
            parse(fields[2], "processor")?,
            parse(fields[3], "start")?,
        );
        if v as usize >= n || dir as usize >= k {
            return Err(format!(
                "line {}: task ({v},{dir}) out of range",
                lineno + 1
            ));
        }
        if proc[v as usize] != u32::MAX && proc[v as usize] != p {
            return Err(format!(
                "line {}: cell {v} assigned to two processors",
                lineno + 1
            ));
        }
        proc[v as usize] = p;
        max_proc = max_proc.max(p);
        starts[TaskId::pack(v, dir, n).index()] = t;
    }
    if starts.contains(&u32::MAX) {
        return Err("missing tasks in CSV".into());
    }
    if proc.contains(&u32::MAX) {
        return Err("missing cell assignments in CSV".into());
    }
    let assignment = crate::assignment::Assignment::from_vec(proc, max_proc as usize + 1);
    Schedule::new(starts, assignment).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::list_schedule::greedy_schedule;
    use crate::schedule::validate;
    use sweep_dag::SweepInstance;

    fn sample() -> (SweepInstance, Schedule) {
        let inst = SweepInstance::random_layered(30, 3, 5, 2, 4);
        let a = Assignment::random_cells(30, 4, 1);
        let s = greedy_schedule(&inst, a);
        (inst, s)
    }

    #[test]
    fn timeline_covers_all_tasks_once() {
        let (inst, s) = sample();
        let tl = timelines(&inst, &s);
        let busy: usize = tl
            .iter()
            .map(|row| row.iter().filter(|x| x.is_some()).count())
            .sum();
        assert_eq!(busy, inst.num_tasks());
    }

    #[test]
    fn gantt_renders_every_processor() {
        let (inst, s) = sample();
        let g = render_gantt(&inst, &s, 40);
        assert_eq!(g.lines().count(), 1 + 4);
        assert!(g.contains("makespan"));
        assert!(g.contains("p0"));
        // Single-processor schedules are fully busy.
        let inst1 = SweepInstance::random_layered(10, 2, 3, 1, 0);
        let s1 = greedy_schedule(&inst1, Assignment::single(10));
        let g1 = render_gantt(&inst1, &s1, 20);
        assert!(g1.lines().nth(1).unwrap().chars().all(|c| c != '.'));
    }

    #[test]
    fn csv_round_trip_preserves_schedule() {
        let (inst, s) = sample();
        let csv = to_csv(&inst, &s);
        let back = from_csv(&csv, inst.num_cells(), inst.num_directions()).unwrap();
        assert_eq!(back.starts(), s.starts());
        assert_eq!(back.makespan(), s.makespan());
        validate(&inst, &back).unwrap();
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(from_csv("header\n1,2\n", 2, 1).is_err()); // wrong arity
        assert!(from_csv("header\nx,0,0,0\n", 2, 1).is_err()); // bad number
        assert!(from_csv("header\n5,0,0,0\n", 2, 1).is_err()); // out of range
                                                               // Cell on two processors.
        let bad = "h\n0,0,0,0\n0,1,1,1\n1,0,1,2\n1,1,1,3\n";
        assert!(from_csv(bad, 2, 2).unwrap_err().contains("two processors"));
        // Missing task.
        assert!(from_csv("h\n0,0,0,0\n", 2, 1).is_err());
    }

    #[test]
    fn empty_schedule_renders() {
        let inst = SweepInstance::new(0, vec![sweep_dag::TaskDag::edgeless(0)], "e");
        let s = greedy_schedule(&inst, Assignment::single(0));
        assert!(render_gantt(&inst, &s, 10).contains("empty"));
    }
}
