//! Best-of-`b` multi-trial scheduling with deterministic parallelism.
//!
//! The paper's randomized algorithms (random delay, RDP, Algorithm 3)
//! hold their guarantees in expectation; in practice one runs several
//! independent delay draws and keeps the best schedule. The draws are
//! embarrassingly parallel, so [`best_of_trials`] fans them across the
//! [`sweep_pool`] worker threads.
//!
//! Determinism is preserved by construction: trial `i` runs with the
//! child seed `rand::split_seed(master_seed, i)` — a pure function of
//! `(master_seed, i)` — so every trial's schedule is independent of
//! which worker ran it or in what order. Combined with the pool's
//! index-ordered results and a `(makespan, trial index)` tie-break, the
//! returned schedule is bit-identical to the sequential reference loop
//! ([`best_of_trials_seq`]) at every worker count.

use sweep_dag::SweepInstance;
use sweep_pool::ThreadPool;
use sweep_telemetry as telemetry;

use crate::algorithms::Algorithm;
use crate::assignment::Assignment;
use crate::schedule::Schedule;
use crate::scratch::{TrialContext, TrialScratch};

/// One trial's result in a best-of-`b` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Trial index in `0..b`.
    pub trial: usize,
    /// The child seed the trial ran with
    /// (`rand::split_seed(master_seed, trial)`).
    pub seed: u64,
    /// Makespan the trial achieved.
    pub makespan: u32,
}

/// Result of [`best_of_trials`]: the winning schedule plus the full
/// per-trial record (for variance studies and reporting).
#[derive(Debug, Clone)]
pub struct BestOfTrials {
    /// Minimum-makespan schedule; ties broken by lowest trial index.
    pub schedule: Schedule,
    /// Index of the winning trial.
    pub trial: usize,
    /// Child seed of the winning trial.
    pub seed: u64,
    /// Every trial's outcome, in trial order.
    pub outcomes: Vec<TrialOutcome>,
}

/// The `b` child seeds a master seed splits into — trial `i` always
/// gets `split_seed(master_seed, i)`, in every execution mode.
pub fn trial_seeds(master_seed: u64, b: usize) -> Vec<u64> {
    (0..b as u64)
        .map(|i| rand::split_seed(master_seed, i))
        .collect()
}

/// Runs `b` independent trials of `algorithm` on the global thread pool
/// and keeps the best schedule. See [`best_of_trials_with_pool`].
pub fn best_of_trials(
    instance: &SweepInstance,
    assignment: &Assignment,
    algorithm: Algorithm,
    b: usize,
    master_seed: u64,
) -> BestOfTrials {
    best_of_trials_with_pool(
        &sweep_pool::global(),
        instance,
        assignment,
        algorithm,
        b,
        master_seed,
    )
}

/// Runs `b` independent trials of `algorithm` on an explicit pool and
/// keeps the minimum-makespan schedule (ties → lowest trial index).
///
/// Bit-identical to [`best_of_trials_seq`] at every worker count: each
/// trial's seed is split from the master ahead of time, so its schedule
/// does not depend on the execution interleaving.
///
/// # Panics
/// Panics when `b == 0` — there is no schedule to return.
pub fn best_of_trials_with_pool(
    pool: &ThreadPool,
    instance: &SweepInstance,
    assignment: &Assignment,
    algorithm: Algorithm,
    b: usize,
    master_seed: u64,
) -> BestOfTrials {
    assert!(b > 0, "best_of_trials needs at least one trial");
    let _span = telemetry::span!("sched.best_of_trials");
    let seeds = trial_seeds(master_seed, b);
    telemetry::counter_add("sched.trials", b as u64);
    if b == 1 {
        // A single trial IS the winner — skip the context hoist.
        let schedule = algorithm.run(instance, assignment.clone(), seeds[0]);
        return from_makespans(
            seeds,
            vec![schedule.makespan()],
            Some(schedule),
            |_| unreachable!(),
        );
    }
    // Trials produce makespans only, on per-worker reused scratch
    // arenas ([`TrialScratch`]); the seed-independent state (levels,
    // in-degrees, heap capacities) is hoisted into one shared
    // [`TrialContext`]. The winning schedule is rematerialized below
    // by re-running the single winning trial — a pure function of its
    // seed, so bit-identical to what the trial itself computed.
    let ctx = TrialContext::new(instance, assignment, algorithm);
    let makespans = pool.par_map_scratch(b, TrialScratch::new, |i, scratch| {
        ctx.run_trial(seeds[i], scratch)
    });
    from_makespans(seeds, makespans, None, |seed| {
        algorithm.run(instance, assignment.clone(), seed)
    })
}

/// The sequential reference loop: same seeds, same selection rule, no
/// pool. Exists so tests (and the SW023 analyzer) can diff the parallel
/// path against an independent implementation.
pub fn best_of_trials_seq(
    instance: &SweepInstance,
    assignment: &Assignment,
    algorithm: Algorithm,
    b: usize,
    master_seed: u64,
) -> BestOfTrials {
    assert!(b > 0, "best_of_trials needs at least one trial");
    let seeds = trial_seeds(master_seed, b);
    let schedules: Vec<Schedule> = seeds
        .iter()
        .map(|&seed| algorithm.run(instance, assignment.clone(), seed))
        .collect();
    select_best(seeds, schedules)
}

fn select_best(seeds: Vec<u64>, schedules: Vec<Schedule>) -> BestOfTrials {
    let makespans: Vec<u32> = schedules.iter().map(Schedule::makespan).collect();
    let outcomes: Vec<TrialOutcome> = seeds
        .iter()
        .zip(&makespans)
        .enumerate()
        .map(|(trial, (&seed, &makespan))| TrialOutcome {
            trial,
            seed,
            makespan,
        })
        .collect();
    let winner = winner_of(&outcomes);
    let schedule = schedules
        .into_iter()
        .nth(winner)
        .expect("winner index in range");
    BestOfTrials {
        schedule,
        trial: winner,
        seed: outcomes[winner].seed,
        outcomes,
    }
}

/// Winner selection shared by every execution mode: minimum makespan,
/// ties broken to the lowest trial index.
fn winner_of(outcomes: &[TrialOutcome]) -> usize {
    outcomes
        .iter()
        .min_by_key(|o| (o.makespan, o.trial))
        .expect("b > 0 checked by callers")
        .trial
}

/// Assembles a [`BestOfTrials`] from per-trial makespans, materializing
/// the winning schedule via `rerun` unless one is supplied.
fn from_makespans(
    seeds: Vec<u64>,
    makespans: Vec<u32>,
    schedule: Option<Schedule>,
    rerun: impl FnOnce(u64) -> Schedule,
) -> BestOfTrials {
    let outcomes: Vec<TrialOutcome> = seeds
        .iter()
        .zip(&makespans)
        .enumerate()
        .map(|(trial, (&seed, &makespan))| TrialOutcome {
            trial,
            seed,
            makespan,
        })
        .collect();
    let winner = winner_of(&outcomes);
    let schedule = schedule.unwrap_or_else(|| rerun(outcomes[winner].seed));
    debug_assert_eq!(
        schedule.makespan(),
        outcomes[winner].makespan,
        "winner re-run diverged from the trial makespan"
    );
    BestOfTrials {
        schedule,
        trial: winner,
        seed: outcomes[winner].seed,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;

    #[test]
    fn parallel_matches_sequential_reference() {
        let inst = SweepInstance::random_layered(60, 4, 6, 2, 11);
        let a = Assignment::random_cells(60, 6, 3);
        for b in [1usize, 2, 7, 16] {
            let seq = best_of_trials_seq(&inst, &a, Algorithm::RandomDelayPriorities, b, 42);
            for threads in [1usize, 2, 4, 8] {
                let pool = ThreadPool::new(threads);
                let par = best_of_trials_with_pool(
                    &pool,
                    &inst,
                    &a,
                    Algorithm::RandomDelayPriorities,
                    b,
                    42,
                );
                assert_eq!(par.trial, seq.trial, "b={b} threads={threads}");
                assert_eq!(par.seed, seq.seed);
                assert_eq!(par.outcomes, seq.outcomes);
                assert_eq!(par.schedule.starts(), seq.schedule.starts());
            }
        }
    }

    #[test]
    fn winner_is_the_minimum_makespan() {
        let inst = SweepInstance::random_layered(50, 3, 5, 2, 5);
        let a = Assignment::random_cells(50, 5, 9);
        let best = best_of_trials(&inst, &a, Algorithm::RandomDelay, 12, 7);
        validate(&inst, &best.schedule).unwrap();
        assert_eq!(best.outcomes.len(), 12);
        let min = best.outcomes.iter().map(|o| o.makespan).min().unwrap();
        assert_eq!(best.schedule.makespan(), min);
        assert_eq!(best.outcomes[best.trial].makespan, min);
        // Outcomes arrive in trial order regardless of worker count.
        assert!(best
            .outcomes
            .windows(2)
            .all(|w| w[0].trial + 1 == w[1].trial));
    }

    #[test]
    fn ties_break_to_the_lowest_trial_index() {
        // Greedy ignores the seed, so all trials tie — the winner must
        // be trial 0 under the (makespan, trial) ordering.
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 2);
        let a = Assignment::random_cells(40, 4, 1);
        let best = best_of_trials(&inst, &a, Algorithm::Greedy, 8, 123);
        assert_eq!(best.trial, 0);
    }

    #[test]
    fn seeds_are_split_not_sequential() {
        let seeds = trial_seeds(99, 4);
        assert_eq!(seeds.len(), 4);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, rand::split_seed(99, i as u64));
            assert_ne!(s, 99, "child seed must not collapse to the master");
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let inst = SweepInstance::random_layered(10, 2, 3, 1, 0);
        let a = Assignment::single(10);
        best_of_trials(&inst, &a, Algorithm::Greedy, 0, 0);
    }
}
