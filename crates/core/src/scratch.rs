//! Arena-reused trial scratch for best-of-`b` scheduling.
//!
//! Before this module, every trial of [`crate::best_of_trials`] paid
//! twice: it re-derived the per-direction level structure (`k` BFS
//! traversals) and allocated a fresh priority vector, in-degree vector,
//! per-processor heaps, and `Schedule` — per trial. [`TrialContext`]
//! hoists everything that depends only on `(instance, assignment,
//! algorithm)` out of the loop, and [`TrialScratch`] keeps every
//! per-trial buffer warm across trials (reset, never freed), threaded
//! through the pool as one scratch slot per worker
//! ([`sweep_pool::ThreadPool::par_map_scratch`]).
//!
//! Steady state performs **zero heap allocations per trial**: the
//! scratch pre-reserves every buffer to its worst case on first use
//! (`warm-up`), and [`TrialScratch::grow_events`] counts the runs in
//! which any buffer capacity actually changed — the
//! `scratch_zero_allocs_after_warm_up` test asserts the count stays
//! flat after warm-up, and the `par_speedup` bench reports it per
//! width via the `sched.scratch.grows` / `sched.scratch.trials`
//! telemetry counters.
//!
//! Trials on the fast path produce *makespans only*; the winning
//! schedule is rematerialized afterwards by re-running the single
//! winning trial (a pure function of its seed), so no per-trial
//! `Schedule` is ever built. Algorithms outside the fast path
//! (Graham-preprocessed and heuristic-priority variants) fall back to
//! [`Algorithm::run`] per trial, unchanged.

use std::collections::BinaryHeap;

use sweep_dag::SweepInstance;
use sweep_telemetry as telemetry;

use crate::algorithms::Algorithm;
use crate::assignment::Assignment;
use crate::list_schedule::{list_schedule_core, ListBuffers};
use crate::random_delay::{base_task_levels, random_delay_core, random_delays_into, LayerBuffers};

/// Everything about a best-of-`b` run that does not depend on the
/// trial seed, computed once and shared (immutably) by all workers.
pub struct TrialContext<'a> {
    instance: &'a SweepInstance,
    assignment: &'a Assignment,
    algorithm: Algorithm,
    /// `level_i(v)` per task — the delay-independent part of `Γ`.
    base_levels: Vec<u32>,
    /// In-degree template per task (copied, not recomputed, per trial).
    indeg: Vec<u32>,
    /// Worst-case ready-heap size per processor: `cells(p) · k`.
    heap_caps: Vec<usize>,
    /// Worst case for Algorithm 1's layer count: `max level + k`.
    max_layers: usize,
    fast: bool,
}

impl<'a> TrialContext<'a> {
    /// Precomputes the seed-independent trial state. Cheap for
    /// algorithms without a fast path (everything stays empty).
    pub fn new(
        instance: &'a SweepInstance,
        assignment: &'a Assignment,
        algorithm: Algorithm,
    ) -> TrialContext<'a> {
        let fast = matches!(
            algorithm,
            Algorithm::RandomDelay | Algorithm::RandomDelayPriorities | Algorithm::Greedy
        );
        let n = instance.num_cells();
        let k = instance.num_directions();
        let needs_levels = fast && !matches!(algorithm, Algorithm::Greedy);
        let base_levels = if needs_levels {
            base_task_levels(instance)
        } else {
            Vec::new()
        };
        let needs_list = fast && !matches!(algorithm, Algorithm::RandomDelay);
        let mut indeg = Vec::new();
        let mut heap_caps = Vec::new();
        if needs_list {
            indeg = vec![0u32; n * k];
            for (i, dag) in instance.dags().iter().enumerate() {
                for v in 0..n as u32 {
                    indeg[sweep_dag::TaskId::pack(v, i as u32, n).index()] = dag.in_degree(v);
                }
            }
            heap_caps = vec![0usize; assignment.num_procs()];
            for v in 0..n as u32 {
                heap_caps[assignment.proc_of(v) as usize] += k;
            }
        }
        let max_layers = base_levels.iter().copied().max().unwrap_or(0) as usize + k;
        TrialContext {
            instance,
            assignment,
            algorithm,
            base_levels,
            indeg,
            heap_caps,
            max_layers,
            fast,
        }
    }

    /// Whether trials run on the allocation-free scratch path.
    pub fn fast_path(&self) -> bool {
        self.fast
    }

    /// Runs one trial and returns its makespan — identical, by
    /// construction, to `algorithm.run(instance, assignment, seed)
    /// .makespan()`: the fast path executes the very same scheduling
    /// cores (`list_schedule_core` / `random_delay_core`) the
    /// allocating wrappers do, only on reused buffers.
    pub fn run_trial(&self, seed: u64, scratch: &mut TrialScratch) -> u32 {
        if !self.fast {
            return self
                .algorithm
                .run(self.instance, self.assignment.clone(), seed)
                .makespan();
        }
        let n = self.instance.num_cells();
        let k = self.instance.num_directions();
        scratch.ensure(self);
        let caps_before = scratch.capacity_cells();
        let makespan = match self.algorithm {
            Algorithm::RandomDelay => {
                random_delays_into(k, seed, &mut scratch.delays);
                random_delay_core(
                    self.instance,
                    self.assignment,
                    &scratch.delays,
                    &self.base_levels,
                    &mut scratch.layer,
                )
            }
            Algorithm::RandomDelayPriorities => {
                random_delays_into(k, seed, &mut scratch.delays);
                scratch.prio.clear();
                let (base, delays) = (&self.base_levels, &scratch.delays);
                scratch
                    .prio
                    .extend((0..n * k).map(|t| base[t] as i64 + delays[t / n.max(1)] as i64));
                list_schedule_core(
                    self.instance,
                    self.assignment,
                    &scratch.prio,
                    None,
                    Some(&self.indeg),
                    &mut scratch.list,
                )
            }
            Algorithm::Greedy => {
                scratch.prio.clear();
                scratch.prio.resize(n * k, 0);
                list_schedule_core(
                    self.instance,
                    self.assignment,
                    &scratch.prio,
                    None,
                    Some(&self.indeg),
                    &mut scratch.list,
                )
            }
            _ => unreachable!("fast flag covers exactly the arms above"),
        };
        scratch.trials += 1;
        telemetry::counter_add("sched.scratch.trials", 1);
        // Growth audit: `ensure` reserved every buffer to its worst
        // case, so any capacity change here is a missed reservation —
        // counted, surfaced in telemetry, and asserted flat (post
        // warm-up) by the scratch-reuse test.
        if scratch.capacity_cells() != caps_before {
            scratch.grows += 1;
            telemetry::counter_add("sched.scratch.grows", 1);
        }
        makespan
    }
}

/// Per-worker reusable trial buffers (see the module docs). Create one
/// per worker with [`TrialScratch::new`]; the first
/// [`TrialContext::run_trial`] on it warms every buffer up to its
/// worst case, and subsequent trials allocate nothing.
#[derive(Default)]
pub struct TrialScratch {
    prio: Vec<i64>,
    delays: Vec<u32>,
    list: ListBuffers,
    layer: LayerBuffers,
    grows: u64,
    trials: u64,
}

impl TrialScratch {
    /// An empty scratch; buffers are sized lazily by the first trial.
    pub fn new() -> TrialScratch {
        TrialScratch::default()
    }

    /// Number of trials run on this scratch.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of trials in which any buffer grew (the first trial —
    /// warm-up — always counts; afterwards this must stay flat).
    pub fn grow_events(&self) -> u64 {
        self.grows
    }

    /// Reserves every buffer to the context's worst case, counting the
    /// run as a growth event if anything actually grew.
    fn ensure(&mut self, ctx: &TrialContext<'_>) {
        let before = self.capacity_cells();
        let nk = ctx.instance.num_tasks();
        let k = ctx.instance.num_directions();
        reserve(&mut self.delays, k);
        if matches!(ctx.algorithm, Algorithm::RandomDelay) {
            reserve(&mut self.layer.start, nk);
            reserve(&mut self.layer.layer_of, nk);
            reserve(&mut self.layer.layer_tasks, nk);
            reserve(&mut self.layer.layer_xadj, ctx.max_layers + 1);
            reserve(&mut self.layer.cursor, ctx.max_layers);
            reserve(&mut self.layer.next_slot, ctx.assignment.num_procs());
        } else {
            reserve(&mut self.prio, nk);
            reserve(&mut self.list.indeg, nk);
            reserve(&mut self.list.start, nk);
            reserve(&mut self.list.completed, ctx.heap_caps.len());
            if self.list.heaps.len() < ctx.heap_caps.len() {
                self.list
                    .heaps
                    .resize_with(ctx.heap_caps.len(), BinaryHeap::new);
            }
            for (heap, &cap) in self.list.heaps.iter_mut().zip(&ctx.heap_caps) {
                if heap.capacity() < cap {
                    heap.reserve(cap - heap.len());
                }
            }
        }
        if self.capacity_cells() != before {
            self.grows += 1;
            telemetry::counter_add("sched.scratch.grows", 1);
        }
    }

    /// Fingerprint of every buffer's capacity (capacities never
    /// shrink, so inequality means something grew).
    fn capacity_cells(&self) -> usize {
        self.prio.capacity()
            + self.delays.capacity()
            + self.list.indeg.capacity()
            + self.list.start.capacity()
            + self.list.completed.capacity()
            + self.list.heaps.capacity()
            + self
                .list
                .heaps
                .iter()
                .map(BinaryHeap::capacity)
                .sum::<usize>()
            + self.layer.start.capacity()
            + self.layer.layer_of.capacity()
            + self.layer.layer_xadj.capacity()
            + self.layer.layer_tasks.capacity()
            + self.layer.cursor.capacity()
            + self.layer.next_slot.capacity()
    }
}

fn reserve<T>(v: &mut Vec<T>, cap: usize) {
    if v.capacity() < cap {
        v.reserve_exact(cap - v.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trials::trial_seeds;

    fn fast_equals_full(algorithm: Algorithm) {
        let inst = SweepInstance::random_layered(60, 4, 6, 2, 17);
        let a = Assignment::random_cells(60, 5, 3);
        let ctx = TrialContext::new(&inst, &a, algorithm);
        assert!(ctx.fast_path());
        let mut scratch = TrialScratch::new();
        for seed in trial_seeds(99, 16) {
            let fast = ctx.run_trial(seed, &mut scratch);
            let full = algorithm.run(&inst, a.clone(), seed).makespan();
            assert_eq!(fast, full, "{algorithm:?} seed {seed}");
        }
    }

    #[test]
    fn fast_path_matches_full_run_random_delay() {
        fast_equals_full(Algorithm::RandomDelay);
    }

    #[test]
    fn fast_path_matches_full_run_random_delay_priorities() {
        fast_equals_full(Algorithm::RandomDelayPriorities);
    }

    #[test]
    fn fast_path_matches_full_run_greedy() {
        fast_equals_full(Algorithm::Greedy);
    }

    #[test]
    fn slow_algorithms_fall_back() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 7);
        let a = Assignment::random_cells(40, 4, 1);
        let alg = Algorithm::Dfds { delays: true };
        let ctx = TrialContext::new(&inst, &a, alg);
        assert!(!ctx.fast_path());
        let mut scratch = TrialScratch::new();
        let mk = ctx.run_trial(5, &mut scratch);
        assert_eq!(mk, alg.run(&inst, a.clone(), 5).makespan());
        assert_eq!(scratch.grow_events(), 0, "fallback must not touch scratch");
    }

    #[test]
    fn scratch_grows_only_during_warm_up() {
        let inst = SweepInstance::random_layered(80, 5, 7, 2, 23);
        let a = Assignment::random_cells(80, 6, 9);
        for alg in [
            Algorithm::RandomDelay,
            Algorithm::RandomDelayPriorities,
            Algorithm::Greedy,
        ] {
            let ctx = TrialContext::new(&inst, &a, alg);
            let mut scratch = TrialScratch::new();
            ctx.run_trial(rand::split_seed(1, 0), &mut scratch);
            let warmed = scratch.grow_events();
            assert!(warmed >= 1, "{alg:?}: warm-up must reserve");
            for i in 1..64u64 {
                ctx.run_trial(rand::split_seed(1, i), &mut scratch);
            }
            assert_eq!(
                scratch.grow_events(),
                warmed,
                "{alg:?}: buffers grew after warm-up"
            );
            assert_eq!(scratch.trials(), 64);
        }
    }

    #[test]
    fn empty_instance_fast_path() {
        let inst = SweepInstance::new(0, vec![sweep_dag::TaskDag::edgeless(0)], "empty");
        let a = Assignment::single(0);
        let ctx = TrialContext::new(&inst, &a, Algorithm::RandomDelayPriorities);
        let mut scratch = TrialScratch::new();
        assert_eq!(ctx.run_trial(3, &mut scratch), 0);
    }
}
