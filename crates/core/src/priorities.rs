//! The heuristic prioritizations of §5.2: Level, Descendant (Plimpton et
//! al.), and Depth-First Descendant-Seeking (DFDS, Pautz) — each optionally
//! composed with random delays.
//!
//! All three produce a per-task priority vector for
//! [`crate::list_schedule::list_schedule`] (which prefers *smaller*
//! values, so largest-first schemes are negated here). "Adding random
//! delays" to a heuristic is modeled with per-direction release times, as
//! in the paper's experiments where directions are "randomly delayed".

use sweep_dag::{b_levels, descendant_counts, levels, DescendantMode, SweepInstance, TaskId};
use sweep_telemetry as telemetry;

use crate::assignment::Assignment;
use crate::list_schedule::list_schedule;
use crate::random_delay::random_delays;
use crate::schedule::Schedule;

/// Level priorities: task `(v, i)` gets the level of `v` in `G_i`;
/// *smaller is preferred* (§5.2 "Level Priorities").
pub fn level_priorities(instance: &SweepInstance) -> Vec<i64> {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let mut prio = vec![0i64; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        let lv = levels(dag);
        for v in 0..n as u32 {
            prio[TaskId::pack(v, i as u32, n).index()] = lv.level_of[v as usize] as i64;
        }
    }
    prio
}

/// Descendant priorities: the number of descendants of `(v, i)` in `G_i`;
/// *larger is preferred* (negated for the min-first engine). `mode`
/// selects exact or path-count descendants (see `sweep_dag::descendants`).
pub fn descendant_priorities(instance: &SweepInstance, mode: DescendantMode) -> Vec<i64> {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let mut prio = vec![0i64; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        let d = descendant_counts(dag, mode);
        for v in 0..n as u32 {
            // Saturate into i64 to keep the negation total-order intact.
            let c = d[v as usize].min(i64::MAX as u64) as i64;
            prio[TaskId::pack(v, i as u32, n).index()] = -c;
        }
    }
    prio
}

/// DFDS priorities (Pautz). With `b(w)` the b-level of `w` and `K` a
/// constant at least the number of levels:
///
/// * task with an **off-processor child**: priority
///   `max_{children w} b(w) + K`;
/// * task whose children are all on-processor but with some off-processor
///   *descendant*: priority `max_{children w} prio(w) − 1`;
/// * task with **no off-processor descendant**: priority `0`.
///
/// *Larger is preferred* (negated for the engine). Unlike Level and
/// Descendant, DFDS depends on the processor assignment.
pub fn dfds_priorities(instance: &SweepInstance, assignment: &Assignment) -> Vec<i64> {
    let n = instance.num_cells();
    let k = instance.num_directions();
    assert_eq!(assignment.num_cells(), n);
    let mut prio = vec![0i64; n * k];
    // K must dominate any b-level; one constant for the whole instance
    // keeps priorities comparable across directions.
    let kconst = instance
        .dags()
        .iter()
        .map(sweep_dag::critical_path_len)
        .max()
        .unwrap_or(0) as i64
        + 1;
    for (i, dag) in instance.dags().iter().enumerate() {
        let b = b_levels(dag);
        let order = dag.topo_order().expect("instance DAGs are acyclic");
        // raw[v]: DFDS priority of (v, i); computed sinks-first.
        let mut raw = vec![0i64; n];
        let mut has_offproc_desc = vec![false; n];
        for &v in order.iter().rev() {
            let pv = assignment.proc_of(v);
            let mut off_child = false;
            let mut any_off_desc = false;
            let mut max_child_b = 0i64;
            let mut max_child_prio = i64::MIN;
            for &w in dag.successors(v) {
                if assignment.proc_of(w) != pv {
                    off_child = true;
                }
                if has_offproc_desc[w as usize] || assignment.proc_of(w) != pv {
                    any_off_desc = true;
                }
                max_child_b = max_child_b.max(b[w as usize] as i64);
                max_child_prio = max_child_prio.max(raw[w as usize]);
            }
            has_offproc_desc[v as usize] = any_off_desc;
            raw[v as usize] = if off_child {
                max_child_b + kconst
            } else if any_off_desc {
                max_child_prio - 1
            } else {
                0
            };
        }
        for v in 0..n as u32 {
            prio[TaskId::pack(v, i as u32, n).index()] = -raw[v as usize];
        }
    }
    prio
}

/// Which heuristic prioritization to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityScheme {
    /// Level priorities (§5.2).
    Level,
    /// Descendant priorities with the given counting mode.
    Descendant(DescendantMode),
    /// DFDS priorities (assignment-dependent).
    Dfds,
}

impl PriorityScheme {
    /// Short display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            PriorityScheme::Level => "level",
            PriorityScheme::Descendant(DescendantMode::Exact) => "descendant-exact",
            PriorityScheme::Descendant(DescendantMode::Approximate) => "descendant",
            PriorityScheme::Dfds => "dfds",
        }
    }
}

/// Schedules with the given heuristic, optionally composing random delays
/// (per-direction release times drawn from `{0, …, k−1}`).
pub fn schedule_with_priorities(
    instance: &SweepInstance,
    assignment: Assignment,
    scheme: PriorityScheme,
    delays: Option<u64>, // seed for the delay draw; None = no delays
) -> Schedule {
    // Static span name per scheme so the guard stays allocation-free.
    let _span = telemetry::span(match scheme {
        PriorityScheme::Level => "sched.priorities.level",
        PriorityScheme::Descendant(DescendantMode::Exact) => "sched.priorities.descendant_exact",
        PriorityScheme::Descendant(DescendantMode::Approximate) => "sched.priorities.descendant",
        PriorityScheme::Dfds => "sched.priorities.dfds",
    });
    let prio = match scheme {
        PriorityScheme::Level => level_priorities(instance),
        PriorityScheme::Descendant(mode) => descendant_priorities(instance, mode),
        PriorityScheme::Dfds => dfds_priorities(instance, &assignment),
    };
    let release = delays.map(|seed| random_delays(instance.num_directions(), seed));
    list_schedule(instance, assignment, &prio, release.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;
    use sweep_dag::TaskDag;

    fn sample() -> SweepInstance {
        SweepInstance::random_layered(60, 4, 6, 2, 11)
    }

    #[test]
    fn level_priorities_increase_along_edges() {
        let inst = sample();
        let p = level_priorities(&inst);
        let n = inst.num_cells();
        for (i, dag) in inst.dags().iter().enumerate() {
            for (u, v) in dag.edges() {
                assert!(
                    p[TaskId::pack(u, i as u32, n).index()]
                        < p[TaskId::pack(v, i as u32, n).index()]
                );
            }
        }
    }

    #[test]
    fn descendant_priorities_prefer_roots() {
        // A chain: the source has the most descendants ⇒ the most negative
        // (most preferred) priority.
        let dag = TaskDag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = SweepInstance::new(4, vec![dag], "chain");
        for mode in [DescendantMode::Exact, DescendantMode::Approximate] {
            let p = descendant_priorities(&inst, mode);
            assert!(p[0] < p[1] && p[1] < p[2] && p[2] < p[3]);
            assert_eq!(p[3], 0);
        }
    }

    #[test]
    fn dfds_zero_for_no_offproc_descendants() {
        // Everything on one processor ⇒ all priorities 0.
        let inst = sample();
        let a = Assignment::single(60);
        let p = dfds_priorities(&inst, &a);
        assert!(p.iter().all(|&x| x == 0));
    }

    #[test]
    fn dfds_boosts_tasks_with_offproc_children() {
        // Chain 0 -> 1 -> 2 with cell 1 on another processor: task 0 has an
        // off-processor child and must get a large (strongly preferred)
        // priority; task 2 has no off-proc descendants ⇒ 0.
        let dag = TaskDag::from_edges(3, &[(0, 1), (1, 2)]);
        let inst = SweepInstance::new(3, vec![dag], "c");
        let a = Assignment::from_vec(vec![0, 1, 1], 2);
        let p = dfds_priorities(&inst, &a);
        assert!(p[0] < p[1], "0 has off-proc child, must outrank 1");
        assert_eq!(p[2], 0);
        // Task 1 also has… child 2 on the same proc and no off-proc
        // descendants below ⇒ 0.
        assert_eq!(p[1], 0);
    }

    #[test]
    fn dfds_descendant_seeking_decrements() {
        // 0 -> 1 -> 2 with only cell 2 off-processor: 1 has the off-proc
        // child (big priority), 0 has an off-proc *descendant* and gets
        // prio(1) - 1 — one unit less preferred than 1 but preferred over
        // "no off-proc" tasks.
        let dag = TaskDag::from_edges(3, &[(0, 1), (1, 2)]);
        let inst = SweepInstance::new(3, vec![dag], "c");
        let a = Assignment::from_vec(vec![0, 0, 1], 2);
        let p = dfds_priorities(&inst, &a);
        assert!(p[1] < p[0], "child-holder outranks ancestor");
        assert_eq!(p[0], p[1] + 1, "descendant-seeking decrement");
    }

    #[test]
    fn all_schemes_produce_feasible_schedules() {
        let inst = sample();
        for scheme in [
            PriorityScheme::Level,
            PriorityScheme::Descendant(DescendantMode::Approximate),
            PriorityScheme::Descendant(DescendantMode::Exact),
            PriorityScheme::Dfds,
        ] {
            for delays in [None, Some(5u64)] {
                let a = Assignment::random_cells(60, 8, 3);
                let s = schedule_with_priorities(&inst, a, scheme, delays);
                validate(&inst, &s).unwrap();
            }
        }
    }

    #[test]
    fn delayed_variant_changes_the_schedule() {
        let inst = sample();
        let a = Assignment::random_cells(60, 8, 3);
        let s_plain = schedule_with_priorities(&inst, a.clone(), PriorityScheme::Level, None);
        let s_delay = schedule_with_priorities(&inst, a, PriorityScheme::Level, Some(17));
        assert_ne!(s_plain.starts(), s_delay.starts());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(PriorityScheme::Level.name(), "level");
        assert_eq!(PriorityScheme::Dfds.name(), "dfds");
        assert_eq!(
            PriorityScheme::Descendant(DescendantMode::Approximate).name(),
            "descendant"
        );
    }
}
