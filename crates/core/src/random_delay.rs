//! The paper's Algorithm 1 ("Random Delay") and Algorithm 2 ("Random
//! Delays with Priorities").
//!
//! Both draw one delay `X_i ∈ {0, …, k−1}` per direction and combine the
//! per-direction layers `L_{i,j}` into layers `L_r` of a single DAG at
//! `r = j + X_i`, plus a uniformly random processor per cell:
//!
//! * **Algorithm 1** processes the combined layers *strictly sequentially*
//!   — layer `r+1` starts only after every task of layer `r` finished; the
//!   time spent in a layer is the maximum number of its tasks assigned to
//!   one processor. This is the algorithm behind the `O(log² n)`
//!   approximation proof (Theorem 1).
//! * **Algorithm 2** instead uses `Γ(v,i) = level_i(v) + X_i` as a
//!   *priority* for list scheduling, eliminating all idle slots. Same
//!   guarantee (Theorem 2), much better in practice (§5.1, observation 3).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sweep_dag::{levels, SweepInstance, TaskId};
use sweep_telemetry as telemetry;

use crate::assignment::Assignment;
use crate::list_schedule::list_schedule;
use crate::schedule::Schedule;

/// Draws the per-direction delays `X_i ∈ {0, …, k−1}` (step 1 of every
/// random-delay algorithm).
pub fn random_delays(k: usize, seed: u64) -> Vec<u32> {
    let mut delays = Vec::with_capacity(k);
    random_delays_into(k, seed, &mut delays);
    delays
}

/// [`random_delays`] into a caller-owned buffer (cleared first) — the
/// allocation-free form the trial scratch uses.
pub fn random_delays_into(k: usize, seed: u64, out: &mut Vec<u32>) {
    let _span = telemetry::span!("sched.random_delay.delay_draw");
    let mut rng = StdRng::seed_from_u64(seed);
    out.clear();
    out.extend((0..k).map(|_| rng.random_range(0..k as u32)));
}

/// The per-task base levels `level_i(v)` (indexed by `TaskId::index`) —
/// the delay-independent part of `Γ`. Hoisted out of the per-trial path
/// by [`crate::scratch::TrialContext`]: recomputing it costs one BFS
/// per direction, which dominated every trial before the hoist.
pub(crate) fn base_task_levels(instance: &SweepInstance) -> Vec<u32> {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let mut base = vec![0u32; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        let lv = levels(dag);
        for v in 0..n as u32 {
            base[TaskId::pack(v, i as u32, n).index()] = lv.level_of[v as usize];
        }
    }
    base
}

/// The priorities `Γ(v,i) = level_i(v) + X_i` of Algorithm 2, reusable by
/// any list scheduler. Returned indexed by `TaskId::index`.
pub fn delayed_level_priorities(instance: &SweepInstance, delays: &[u32]) -> Vec<i64> {
    let _span = telemetry::span!("sched.random_delay.priorities");
    let n = instance.num_cells();
    let k = instance.num_directions();
    assert_eq!(delays.len(), k, "one delay per direction");
    let base = base_task_levels(instance);
    let mut prio = vec![0i64; n * k];
    if n > 0 {
        for (dir, (chunk, base_chunk)) in prio.chunks_mut(n).zip(base.chunks(n)).enumerate() {
            for (p, &b) in chunk.iter_mut().zip(base_chunk) {
                *p = b as i64 + delays[dir] as i64;
            }
        }
    }
    prio
}

/// **Algorithm 1 — Random Delay.** Layer-sequential processing of the
/// combined DAG. `seed` drives the delay draw only; the processor
/// assignment is supplied by the caller (draw it with
/// [`Assignment::random_cells`] for the paper's setting).
pub fn random_delay(instance: &SweepInstance, assignment: Assignment, seed: u64) -> Schedule {
    let delays = random_delays(instance.num_directions(), seed);
    random_delay_with(instance, assignment, &delays)
}

/// Algorithm 1 with explicit delays (used by tests and the ablation that
/// sets all delays to zero).
pub fn random_delay_with(
    instance: &SweepInstance,
    assignment: Assignment,
    delays: &[u32],
) -> Schedule {
    let base = base_task_levels(instance);
    let mut bufs = LayerBuffers::default();
    random_delay_core(instance, &assignment, delays, &base, &mut bufs);
    Schedule::new_checked(std::mem::take(&mut bufs.start), assignment)
}

/// Reusable buffers for [`random_delay_core`] (Algorithm 1's layer
/// bucketing) — reset, not freed, on every run.
#[derive(Default)]
pub(crate) struct LayerBuffers {
    /// Start times per task (the run's output).
    pub start: Vec<u32>,
    /// Combined layer `level + delay` per task.
    pub layer_of: Vec<u32>,
    /// Counting-sort offsets (`num_layers + 1` entries).
    pub layer_xadj: Vec<u32>,
    /// Tasks in layer-bucket order.
    pub layer_tasks: Vec<u64>,
    /// Counting-sort write cursors.
    pub cursor: Vec<u32>,
    /// Next free timestep per processor within the current layer.
    pub next_slot: Vec<u32>,
}

/// The layer-sequential engine of Algorithm 1: fills `bufs.start` and
/// returns the makespan. `base_levels` is the per-task `level_i(v)`
/// vector ([`base_task_levels`]), precomputed once per trial batch.
pub(crate) fn random_delay_core(
    instance: &SweepInstance,
    assignment: &Assignment,
    delays: &[u32],
    base_levels: &[u32],
    bufs: &mut LayerBuffers,
) -> u32 {
    let _span = telemetry::span!("sched.random_delay");
    let n = instance.num_cells();
    let k = instance.num_directions();
    assert_eq!(delays.len(), k, "one delay per direction");
    let m = assignment.num_procs();
    bufs.start.clear();
    bufs.start.resize(n * k, 0);
    if n == 0 {
        return 0;
    }
    debug_assert_eq!(base_levels.len(), n * k);

    // Combined layer index r = level + delay, per task.
    bufs.layer_of.clear();
    let mut num_layers = 0u32;
    bufs.layer_of.extend((0..n * k).map(|t| {
        let r = base_levels[t] + delays[t / n];
        num_layers = num_layers.max(r + 1);
        r
    }));
    // Bucket tasks by layer (counting sort).
    bufs.layer_xadj.clear();
    bufs.layer_xadj.resize(num_layers as usize + 1, 0);
    for &r in &bufs.layer_of {
        bufs.layer_xadj[r as usize + 1] += 1;
    }
    for r in 0..num_layers as usize {
        bufs.layer_xadj[r + 1] += bufs.layer_xadj[r];
    }
    bufs.layer_tasks.clear();
    bufs.layer_tasks.resize(n * k, 0);
    bufs.cursor.clear();
    bufs.cursor
        .extend_from_slice(&bufs.layer_xadj[..num_layers as usize]);
    for (t, &r) in bufs.layer_of.iter().enumerate() {
        bufs.layer_tasks[bufs.cursor[r as usize] as usize] = t as u64;
        bufs.cursor[r as usize] += 1;
    }

    // Process layers sequentially; within a layer each processor runs its
    // tasks back-to-back in arbitrary (id) order.
    let mut clock = 0u32;
    bufs.next_slot.clear();
    bufs.next_slot.resize(m, 0);
    for r in 0..num_layers as usize {
        let tasks = &bufs.layer_tasks[bufs.layer_xadj[r] as usize..bufs.layer_xadj[r + 1] as usize];
        if tasks.is_empty() {
            continue;
        }
        bufs.next_slot.iter_mut().for_each(|s| *s = clock);
        let mut layer_span = 0u32;
        for &t in tasks {
            let v = (t % n as u64) as u32;
            let p = assignment.proc_of(v) as usize;
            bufs.start[t as usize] = bufs.next_slot[p];
            bufs.next_slot[p] += 1;
            layer_span = layer_span.max(bufs.next_slot[p] - clock);
        }
        telemetry::histogram_record("sched.random_delay.layer_span", layer_span as f64);
        clock += layer_span;
    }
    telemetry::counter_add("sched.tasks_scheduled", (n * k) as u64);
    // The clock advances to exactly one past the last occupied slot of
    // the last non-empty layer — `max start + 1`, i.e. the makespan.
    clock
}

/// **Algorithm 2 — Random Delays with Priorities.** List scheduling with
/// `Γ(v,i) = level_i(v) + X_i`, lowest Γ first.
///
/// ```
/// use sweep_core::{random_delay_priorities, validate, Assignment};
/// use sweep_dag::SweepInstance;
///
/// let inst = SweepInstance::random_layered(100, 8, 10, 2, 1);
/// let a = Assignment::random_cells(100, 16, 2);
/// let schedule = random_delay_priorities(&inst, a, 3);
/// validate(&inst, &schedule).unwrap();
/// assert!(schedule.makespan() as usize >= inst.num_tasks() / 16);
/// ```
pub fn random_delay_priorities(
    instance: &SweepInstance,
    assignment: Assignment,
    seed: u64,
) -> Schedule {
    let delays = random_delays(instance.num_directions(), seed);
    random_delay_priorities_with(instance, assignment, &delays)
}

/// Algorithm 2 with explicit delays.
pub fn random_delay_priorities_with(
    instance: &SweepInstance,
    assignment: Assignment,
    delays: &[u32],
) -> Schedule {
    let prio = delayed_level_priorities(instance, delays);
    list_schedule(instance, assignment, &prio, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;
    use sweep_dag::TaskDag;

    #[test]
    fn delays_in_range_and_deterministic() {
        let d = random_delays(24, 9);
        assert_eq!(d.len(), 24);
        assert!(d.iter().all(|&x| x < 24));
        assert_eq!(d, random_delays(24, 9));
        assert_ne!(d, random_delays(24, 10));
    }

    #[test]
    fn algorithm1_schedules_are_feasible() {
        for seed in 0..6u64 {
            let inst = SweepInstance::random_layered(80, 5, 6, 2, seed);
            let a = Assignment::random_cells(80, 8, seed ^ 1);
            let s = random_delay(&inst, a, seed ^ 2);
            validate(&inst, &s).unwrap();
        }
    }

    #[test]
    fn algorithm2_schedules_are_feasible() {
        for seed in 0..6u64 {
            let inst = SweepInstance::random_layered(80, 5, 6, 2, seed);
            let a = Assignment::random_cells(80, 8, seed ^ 1);
            let s = random_delay_priorities(&inst, a, seed ^ 2);
            validate(&inst, &s).unwrap();
        }
    }

    #[test]
    fn layer_sequential_means_layers_do_not_interleave() {
        // With zero delays and one direction, Algorithm 1 degenerates to
        // level-by-level processing: every task of level l finishes before
        // any task of level l+1 starts.
        let inst = SweepInstance::random_layered(60, 1, 5, 2, 3);
        let a = Assignment::random_cells(60, 4, 4);
        let s = random_delay_with(&inst, a, &[0]);
        validate(&inst, &s).unwrap();
        let lv = sweep_dag::levels(inst.dag(0));
        let mut max_per_level = vec![0u32; lv.depth()];
        let mut min_per_level = vec![u32::MAX; lv.depth()];
        for v in 0..60u32 {
            let l = lv.level_of[v as usize] as usize;
            let t = s.start_of(TaskId::pack(v, 0, 60));
            max_per_level[l] = max_per_level[l].max(t);
            min_per_level[l] = min_per_level[l].min(t);
        }
        for l in 1..lv.depth() {
            assert!(min_per_level[l] > max_per_level[l - 1]);
        }
    }

    #[test]
    fn priorities_never_worse_than_layer_sequential() {
        // Compaction can only help: same delays, same assignment.
        for seed in 0..5u64 {
            let inst = SweepInstance::random_layered(100, 4, 8, 3, seed);
            let delays = random_delays(4, seed);
            let a = Assignment::random_cells(100, 8, seed ^ 7);
            let s1 = random_delay_with(&inst, a.clone(), &delays);
            let s2 = random_delay_priorities_with(&inst, a, &delays);
            validate(&inst, &s1).unwrap();
            validate(&inst, &s2).unwrap();
            assert!(
                s2.makespan() <= s1.makespan(),
                "priorities {} > layered {}",
                s2.makespan(),
                s1.makespan()
            );
        }
    }

    #[test]
    fn adversarial_chains_show_delay_separation() {
        // Identical chains: layer-sequential with zero delays serializes
        // all k copies of each cell inside its layer (makespan ≈ n·k);
        // random delays spread them (makespan ≈ (n+k)·small).
        let (n, k, m) = (40usize, 8usize, 8usize);
        let inst = SweepInstance::identical_chains(n, k);
        let a = Assignment::random_cells(n, m, 11);
        let zero = vec![0u32; k];
        let s_no = random_delay_with(&inst, a.clone(), &zero);
        let s_yes = random_delay(&inst, a, 13);
        validate(&inst, &s_no).unwrap();
        validate(&inst, &s_yes).unwrap();
        assert_eq!(
            s_no.makespan() as usize,
            n * k,
            "no delays ⇒ full serialization"
        );
        assert!(
            (s_yes.makespan() as usize) < n * k * 3 / 4,
            "delays should break the serialization: {}",
            s_yes.makespan()
        );
    }

    #[test]
    fn single_cell_instance() {
        let inst = SweepInstance::new(1, vec![TaskDag::edgeless(1); 3], "one");
        let a = Assignment::single(1);
        let s = random_delay(&inst, a.clone(), 0);
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan(), 3); // three copies serialize on one proc
        let s2 = random_delay_priorities(&inst, a, 0);
        assert_eq!(s2.makespan(), 3);
    }

    #[test]
    fn zero_delay_priorities_equal_plain_level_priorities() {
        let inst = SweepInstance::random_layered(50, 3, 6, 2, 2);
        let zero = vec![0u32; 3];
        let p = delayed_level_priorities(&inst, &zero);
        let lv0 = sweep_dag::levels(inst.dag(0));
        for v in 0..50u32 {
            assert_eq!(
                p[TaskId::pack(v, 0, 50).index()],
                lv0.level_of[v as usize] as i64
            );
        }
    }

    #[test]
    #[should_panic(expected = "one delay per direction")]
    fn wrong_delay_count_panics() {
        let inst = SweepInstance::random_layered(10, 3, 3, 1, 0);
        random_delay_with(&inst, Assignment::single(10), &[0]);
    }
}
