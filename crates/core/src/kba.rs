//! KBA-style columnar assignment — the classical algorithm for *regular*
//! meshes (Koch–Baker–Alcouffe, the paper's reference \[6\]).
//!
//! KBA decomposes a structured grid into vertical columns, assigns each
//! column of cells to one processor arranged in a 2-D processor grid, and
//! pipelines the sweep as a wavefront: with level priorities the sweep
//! front marches diagonally and every processor stays busy once the
//! pipeline fills. The paper cites KBA as "essentially optimal" on
//! regular meshes — this module lets the repository check that statement
//! against the random-delay algorithms (see the `kba_regular` bench) and
//! provides the natural baseline a transport practitioner would ask for.
//!
//! The synthetic mesh generator emits cells in hex-major order (12 tets
//! per hex, hexes ordered x-major, then y, then z), so on *uncarved*
//! meshes `hex = cell / 12` and the column coordinates recover directly;
//! [`kba_assignment`] encapsulates that arithmetic.

use sweep_telemetry as telemetry;

use crate::assignment::Assignment;

/// Chooses a processor-grid factorization `px × py = m` with `px` as
/// close to `√m` as possible.
pub fn processor_grid(m: usize) -> (usize, usize) {
    assert!(m > 0);
    let mut best = (1usize, m);
    let mut px = 1usize;
    while px * px <= m {
        if m.is_multiple_of(px) {
            best = (px, m / px);
        }
        px += 1;
    }
    best
}

/// KBA assignment for a structured scaffold of `nx × ny × nz` hexes with
/// 12 tetrahedra per hex (the uncarved output of
/// `sweep_mesh::generate`). Cells of the grid column `(i, j)` — all `z`
/// — map to one processor of the `px × py` grid.
///
/// ```
/// use sweep_core::kba_assignment;
///
/// let a = kba_assignment(4, 4, 4, 4 * 4 * 4 * 12, 16);
/// // All 12 tets of hex 0 — and the whole z-column above it — share
/// // processor 0.
/// assert!((0..12).all(|t| a.proc_of(t) == 0));
/// ```
///
/// # Panics
/// Panics when `num_cells != nx·ny·nz·12` (the mesh was carved or
/// trimmed, so the hex arithmetic no longer applies) or `m == 0`.
pub fn kba_assignment(nx: usize, ny: usize, nz: usize, num_cells: usize, m: usize) -> Assignment {
    let _span = telemetry::span!("sched.kba.assignment");
    assert!(m > 0, "need at least one processor");
    assert_eq!(
        num_cells,
        nx * ny * nz * 12,
        "KBA needs the full structured scaffold (no carving/trimming)"
    );
    let (px, py) = processor_grid(m);
    let proc_of_cell: Vec<u32> = (0..num_cells)
        .map(|cell| {
            let hex = cell / 12;
            // Generator hex order: i outer, then j, then k (z fastest).
            let i = hex / (ny * nz);
            let j = (hex / nz) % ny;
            let pi = i * px / nx;
            let pj = j * py / ny;
            (pi * py + pj) as u32
        })
        .collect();
    Assignment::from_vec(proc_of_cell, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::c1_interprocessor_edges;
    use crate::priorities::{schedule_with_priorities, PriorityScheme};
    use crate::schedule::validate;
    use sweep_dag::SweepInstance;
    use sweep_mesh::{generate, GeneratorConfig};
    use sweep_quadrature::QuadratureSet;

    #[test]
    fn processor_grid_factors() {
        assert_eq!(processor_grid(16), (4, 4));
        assert_eq!(processor_grid(12), (3, 4));
        assert_eq!(processor_grid(7), (1, 7));
        assert_eq!(processor_grid(1), (1, 1));
        for m in 1..60usize {
            let (a, b) = processor_grid(m);
            assert_eq!(a * b, m);
            assert!(a <= b);
        }
    }

    fn structured(n: usize) -> (sweep_mesh::TetMesh, GeneratorConfig) {
        let mut cfg = GeneratorConfig::cube(n, 3);
        cfg.jitter = 0.0; // regular mesh: KBA's home turf
        (generate(&cfg).unwrap(), cfg)
    }

    #[test]
    fn kba_assignment_is_columnar() {
        let (mesh, cfg) = structured(4);
        use sweep_mesh::SweepMesh;
        let a = kba_assignment(cfg.nx, cfg.ny, cfg.nz, mesh.num_cells(), 4);
        // All 12 tets of a hex share a processor, and the whole z-column of
        // hexes above a given (i, j) shares it too.
        for hex in 0..(4 * 4 * 4) {
            let p0 = a.proc_of((hex * 12) as u32);
            for t in 0..12 {
                assert_eq!(a.proc_of((hex * 12 + t) as u32), p0);
            }
        }
        for i in 0..4usize {
            for j in 0..4usize {
                let col0 = (i * 16 + j * 4) * 12;
                let p = a.proc_of(col0 as u32);
                for k in 0..4usize {
                    let cell = ((i * 4 + j) * 4 + k) * 12;
                    assert_eq!(a.proc_of(cell as u32), p, "column ({i},{j}) split");
                }
            }
        }
    }

    #[test]
    fn kba_beats_random_on_communication() {
        let (mesh, cfg) = structured(6);
        use sweep_mesh::SweepMesh;
        let quad = QuadratureSet::level_symmetric(2).unwrap();
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "kba");
        let m = 9;
        let kba = kba_assignment(cfg.nx, cfg.ny, cfg.nz, mesh.num_cells(), m);
        let rnd = Assignment::random_cells(mesh.num_cells(), m, 1);
        let c1_kba = c1_interprocessor_edges(&inst, &kba);
        let c1_rnd = c1_interprocessor_edges(&inst, &rnd);
        assert!(
            c1_kba * 3 < c1_rnd,
            "KBA columns should slash C1: {c1_kba} vs {c1_rnd}"
        );
    }

    #[test]
    fn kba_pipeline_is_competitive_on_regular_meshes() {
        let (mesh, cfg) = structured(6);
        use sweep_mesh::SweepMesh;
        let quad = QuadratureSet::level_symmetric(2).unwrap();
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "kba");
        let m = 9;
        let kba = kba_assignment(cfg.nx, cfg.ny, cfg.nz, mesh.num_cells(), m);
        let s = schedule_with_priorities(&inst, kba, PriorityScheme::Level, None);
        validate(&inst, &s).unwrap();
        let lb = crate::bounds::lower_bounds(&inst, m).best();
        assert!(
            (s.makespan() as u64) < 3 * lb,
            "KBA wavefront should be near-optimal on a regular mesh: {} vs lb {}",
            s.makespan(),
            lb
        );
    }

    #[test]
    #[should_panic(expected = "full structured scaffold")]
    fn carved_mesh_rejected() {
        kba_assignment(4, 4, 4, 100, 4);
    }
}
