//! Exact optimal sweep schedules for *tiny* instances, by branch and
//! bound.
//!
//! The paper closes by noting the value of "good lower bounds on the
//! quality of schedules"; this module provides the strongest possible
//! one — the true optimum — for instances small enough to enumerate
//! (`n·k ≲ 24` tasks). Used by tests to certify that the approximation
//! algorithms' empirical ratios are measured against OPT, not just the
//! `max{nk/m, k, D}` proxy.
//!
//! Two levels:
//!
//! * [`optimal_makespan_fixed_assignment`] — DFS with memoization over
//!   done-task bitmasks, exploiting the exchange argument that some
//!   optimal schedule never idles a processor that has a ready task;
//! * [`optimal_sweep_makespan`] — additionally minimizes over cell →
//!   processor assignments, enumerated as restricted-growth strings
//!   (set partitions into ≤ m blocks) so processor symmetry is not
//!   re-explored.

use sweep_dag::{SweepInstance, TaskId};

use crate::assignment::Assignment;
use crate::bounds::lower_bounds;

/// Hard cap on task count for the exact search.
pub const MAX_TASKS: usize = 24;

/// Sentinel marking a done-mask state the search has not reached yet.
const UNSEEN: u32 = u32::MAX;

/// Exact optimal makespan for a *fixed* assignment.
///
/// # Panics
/// Panics when `n·k > MAX_TASKS` (the bitmask search would blow up).
pub fn optimal_makespan_fixed_assignment(instance: &SweepInstance, assignment: &Assignment) -> u32 {
    optimal_fixed_with_memo(instance, assignment, &mut Vec::new())
}

/// Implementation of [`optimal_makespan_fixed_assignment`] with a
/// caller-owned memo buffer, so [`optimal_sweep_makespan`]'s assignment
/// enumeration reuses one allocation across its whole search.
fn optimal_fixed_with_memo(
    instance: &SweepInstance,
    assignment: &Assignment,
    memo: &mut Vec<u32>,
) -> u32 {
    let total = instance.num_tasks();
    assert!(
        total <= MAX_TASKS,
        "exact search capped at {MAX_TASKS} tasks"
    );
    assert_eq!(assignment.num_cells(), instance.num_cells());
    if total == 0 {
        return 0;
    }
    let n = instance.num_cells();
    let m = assignment.num_procs();

    // Precompute per-task predecessor masks and processor.
    let mut pred_mask = vec![0u32; total];
    let mut proc = vec![0u8; total];
    for (i, dag) in instance.dags().iter().enumerate() {
        for v in 0..n as u32 {
            let t = TaskId::pack(v, i as u32, n).index();
            proc[t] = assignment.proc_of(v) as u8;
            for &u in dag.predecessors(v) {
                pred_mask[t] |= 1 << TaskId::pack(u, i as u32, n).index();
            }
        }
    }
    // Simple critical-path tail bound per task (in tasks, including self).
    let mut tail = vec![1u32; total];
    for (i, dag) in instance.dags().iter().enumerate() {
        let order = dag.topo_order().expect("acyclic");
        for &v in order.iter().rev() {
            let t = TaskId::pack(v, i as u32, n).index();
            for &w in dag.successors(v) {
                let wt = TaskId::pack(w, i as u32, n).index();
                tail[t] = tail[t].max(tail[wt] + 1);
            }
        }
    }

    struct Ctx {
        total: usize,
        m: usize,
        pred_mask: Vec<u32>,
        proc: Vec<u8>,
        tail: Vec<u32>,
        // Flat memo keyed directly by the done-mask (2^total entries,
        // UNSEEN = not reached): earliest elapsed time this state was
        // reached at. Replaces the former HashMap — the probe on the
        // search's innermost path is one indexed load, no hashing.
        memo: Vec<u32>,
        // Scratch per-processor load vector for remaining_lb, reused
        // across the whole search instead of allocated per node.
        load: Vec<u32>,
        best: u32,
    }

    impl Ctx {
        /// Remaining-time lower bound from state `done`.
        fn remaining_lb(&mut self, done: u32) -> u32 {
            let remaining = self.total as u32 - done.count_ones();
            self.load.iter_mut().for_each(|x| *x = 0);
            let mut cp = 0u32;
            for t in 0..self.total {
                if done & (1 << t) == 0 {
                    self.load[self.proc[t] as usize] += 1;
                    cp = cp.max(self.tail[t]);
                }
            }
            let maxload = self.load.iter().copied().max().unwrap_or(0);
            maxload.max(cp).max(remaining.div_ceil(self.m as u32))
        }

        fn dfs(&mut self, done: u32, elapsed: u32) {
            if done.count_ones() as usize == self.total {
                self.best = self.best.min(elapsed);
                return;
            }
            if elapsed + self.remaining_lb(done) >= self.best {
                return;
            }
            let seen = self.memo[done as usize];
            if seen != UNSEEN && seen <= elapsed {
                return; // reached this state at least as early before
            }
            self.memo[done as usize] = elapsed;

            // Ready tasks bucketed by processor in CSR form, entirely on
            // the stack (total ≤ MAX_TASKS, proc ids fit u8): counts,
            // then prefix offsets, then a fill pass. No per-node heap
            // allocation on the search's hot path.
            let mut count = [0u8; 256];
            for t in 0..self.total {
                let bit = 1u32 << t;
                if done & bit == 0 && self.pred_mask[t] & !done == 0 {
                    count[self.proc[t] as usize] += 1;
                }
            }
            // proc ids are stored as u8, so at most 256 buckets matter
            // even when the assignment declares more processors.
            let pm = self.m.min(256);
            let mut offset = [0u8; 257];
            for p in 0..pm {
                offset[p + 1] = offset[p] + count[p];
            }
            let mut fill = offset;
            let mut ready = [0u32; MAX_TASKS];
            for t in 0..self.total {
                let bit = 1u32 << t;
                if done & bit == 0 && self.pred_mask[t] & !done == 0 {
                    let p = self.proc[t] as usize;
                    ready[fill[p] as usize] = t as u32;
                    fill[p] += 1;
                }
            }
            // (start, len) ranges of processors that have ready work.
            let mut busy = [(0u8, 0u8); MAX_TASKS];
            let mut nb = 0usize;
            for p in 0..pm {
                if count[p] > 0 {
                    busy[nb] = (offset[p], count[p]);
                    nb += 1;
                }
            }
            debug_assert!(nb > 0, "acyclic instance always has ready work");

            // Branch over the cartesian product of per-processor choices.
            // By the exchange argument a processor with ready tasks never
            // idles in some optimal schedule, so "idle" is not a branch.
            let mut choice = [0u8; MAX_TASKS];
            loop {
                let mut next = done;
                for (ci, &(s, _)) in busy[..nb].iter().enumerate() {
                    next |= 1 << ready[(s + choice[ci]) as usize];
                }
                self.dfs(next, elapsed + 1);
                // Increment the mixed-radix counter.
                let mut pos = 0;
                loop {
                    if pos == nb {
                        return;
                    }
                    choice[pos] += 1;
                    if choice[pos] < busy[pos].1 {
                        break;
                    }
                    choice[pos] = 0;
                    pos += 1;
                }
            }
        }
    }

    memo.clear();
    memo.resize(1usize << total, UNSEEN);
    let mut ctx = Ctx {
        total,
        m,
        pred_mask,
        proc,
        tail,
        memo: std::mem::take(memo),
        load: vec![0u32; m],
        best: total as u32, // serial schedule always feasible
    };
    ctx.dfs(0, 0);
    *memo = ctx.memo;
    ctx.best
}

/// Exact optimal sweep makespan, minimizing over both the cell →
/// processor assignment and the schedule. Assignments are enumerated as
/// set partitions of the cells into at most `m` groups (processor
/// identity is symmetric), so the search is exact without redundancy.
///
/// ```
/// use sweep_core::optimal_sweep_makespan;
/// use sweep_dag::SweepInstance;
///
/// // 4-cell chain in 3 identical directions: the pipeline bound
/// // n + k − 1 is met exactly.
/// let inst = SweepInstance::identical_chains(4, 3);
/// assert_eq!(optimal_sweep_makespan(&inst, 4), 6);
/// ```
///
/// # Panics
/// Panics when `n·k > MAX_TASKS` or `n > 12`.
pub fn optimal_sweep_makespan(instance: &SweepInstance, m: usize) -> u32 {
    let n = instance.num_cells();
    assert!(n <= 12, "assignment enumeration capped at 12 cells");
    assert!(m >= 1);
    if n == 0 {
        return 0;
    }
    let lb = lower_bounds(instance, m).best() as u32;
    let mut best = u32::MAX;
    // One memo allocation for the whole enumeration: each fixed-
    // assignment search refills it instead of reallocating 2^total
    // entries per restricted growth string.
    let mut memo: Vec<u32> = Vec::new();
    // Restricted growth strings: a[0] = 0; a[i] <= max(a[0..i]) + 1, < m.
    let mut a = vec![0u32; n];
    loop {
        let used = a.iter().copied().max().unwrap_or(0) as usize + 1;
        let assignment = Assignment::from_vec(a.clone(), used.max(1));
        let ms = optimal_fixed_with_memo(instance, &assignment, &mut memo);
        best = best.min(ms);
        if best == lb {
            return best; // cannot do better than the lower bound
        }
        // Next restricted growth string.
        let mut i = n - 1;
        loop {
            if i == 0 {
                return best;
            }
            let prefix_max = a[..i].iter().copied().max().unwrap_or(0);
            if a[i] <= prefix_max && (a[i] as usize) < m - 1 {
                a[i] += 1;
                for x in a[i + 1..].iter_mut() {
                    *x = 0;
                }
                break;
            }
            i -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_schedule::greedy_schedule;
    use crate::random_delay::random_delay_priorities;
    use crate::schedule::validate;
    use sweep_dag::TaskDag;

    #[test]
    fn chain_optimum_is_its_length() {
        // One chain, one direction: OPT = n regardless of m.
        let inst = SweepInstance::identical_chains(6, 1);
        for m in [1usize, 2, 3] {
            assert_eq!(optimal_sweep_makespan(&inst, m), 6, "m={m}");
        }
    }

    #[test]
    fn independent_tasks_pack_perfectly() {
        let inst = SweepInstance::new(6, vec![TaskDag::edgeless(6)], "w");
        assert_eq!(optimal_sweep_makespan(&inst, 3), 2); // 6 tasks / 3 procs
        assert_eq!(optimal_sweep_makespan(&inst, 6), 1);
        assert_eq!(optimal_sweep_makespan(&inst, 1), 6);
    }

    #[test]
    fn identical_chains_pipeline_optimally() {
        // n cells, k identical chains: OPT = n + k - 1 with enough procs
        // (pipeline), since cell v's copies serialize and the chain forces
        // order v, v+1 after it.
        let (n, k) = (4usize, 3usize);
        let inst = SweepInstance::identical_chains(n, k);
        let opt = optimal_sweep_makespan(&inst, 4);
        assert_eq!(opt, (n + k - 1) as u32);
    }

    #[test]
    fn fixed_assignment_single_proc_is_serial() {
        let inst = SweepInstance::random_layered(5, 2, 3, 2, 1);
        let a = Assignment::single(5);
        assert_eq!(optimal_makespan_fixed_assignment(&inst, &a), 10);
    }

    #[test]
    fn optimum_between_bounds_and_heuristics() {
        for seed in 0..6u64 {
            let inst = SweepInstance::random_layered(6, 2, 3, 2, seed);
            let m = 3;
            let opt = optimal_sweep_makespan(&inst, m);
            let lb = lower_bounds(&inst, m).best() as u32;
            assert!(opt >= lb, "seed {seed}: OPT {opt} < lb {lb}");
            // Any feasible schedule is an upper bound witness.
            let a = Assignment::random_cells(6, m, seed);
            let s = greedy_schedule(&inst, a);
            validate(&inst, &s).unwrap();
            assert!(opt <= s.makespan(), "seed {seed}: OPT {opt} > greedy");
        }
    }

    #[test]
    fn rdp_close_to_true_optimum_on_tiny_instances() {
        // The real approximation-ratio measurement the paper wished for:
        // on exhaustively solvable instances, Algorithm 2 stays within 2x
        // of the true OPT.
        let mut worst = 1.0f64;
        for seed in 0..8u64 {
            let inst = SweepInstance::random_layered(7, 3, 3, 2, seed);
            let m = 3;
            let opt = optimal_sweep_makespan(&inst, m) as f64;
            let a = Assignment::random_cells(7, m, seed ^ 5);
            let s = random_delay_priorities(&inst, a, seed ^ 9);
            worst = worst.max(s.makespan() as f64 / opt);
        }
        assert!(
            worst <= 2.0,
            "worst empirical ratio vs true OPT: {worst:.2}"
        );
    }

    #[test]
    fn fixed_assignment_respects_processor_split() {
        // Two independent cells forced onto one processor serialize; split
        // across two they parallelize.
        let inst = SweepInstance::new(2, vec![TaskDag::edgeless(2)], "i");
        let same = Assignment::single(2);
        let split = Assignment::from_vec(vec![0, 1], 2);
        assert_eq!(optimal_makespan_fixed_assignment(&inst, &same), 2);
        assert_eq!(optimal_makespan_fixed_assignment(&inst, &split), 1);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn too_many_tasks_rejected() {
        let inst = SweepInstance::random_layered(13, 2, 3, 1, 0);
        let a = Assignment::single(13);
        optimal_makespan_fixed_assignment(&inst, &a);
    }

    #[test]
    fn empty_instance_zero() {
        let inst = SweepInstance::new(0, vec![TaskDag::edgeless(0)], "e");
        assert_eq!(optimal_sweep_makespan(&inst, 3), 0);
    }
}
