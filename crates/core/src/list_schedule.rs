//! Priority-based list scheduling under the sweep constraints (paper §3,
//! "List Scheduling").
//!
//! Every task is pre-assigned to a processor (through the cell
//! [`Assignment`]); at each timestep every processor runs its *ready*
//! task of minimum priority value. Optional per-direction *release times*
//! delay the whole direction — that is how "adding random delays" composes
//! with the Descendant and DFDS heuristics in §5.2.
//!
//! The engine runs in `O(T·m + n·k·log(n·k))` time, matching the bound of
//! Theorem 2 (`T` is the produced makespan). Ready tasks are kept in one
//! binary heap per processor, keyed by `(priority, task id)` so ties break
//! deterministically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sweep_dag::{SweepInstance, TaskId};
use sweep_telemetry as telemetry;

use crate::assignment::Assignment;
use crate::schedule::Schedule;

/// Runs prioritized list scheduling.
///
/// * `priority[task]` — smaller values run first (negate for largest-first
///   schemes such as Descendant/DFDS);
/// * `release` — optional per-direction earliest start times (the
///   "random delays applied to a heuristic" mechanism).
///
/// # Panics
/// Panics when `priority.len() != n·k`, when the assignment covers a
/// different cell count, or when `release` (if given) has fewer than `k`
/// entries.
pub fn list_schedule(
    instance: &SweepInstance,
    assignment: Assignment,
    priority: &[i64],
    release: Option<&[u32]>,
) -> Schedule {
    let mut bufs = ListBuffers::default();
    list_schedule_core(instance, &assignment, priority, release, None, &mut bufs);
    Schedule::new_checked(std::mem::take(&mut bufs.start), assignment)
}

/// Reusable buffers for [`list_schedule_core`] — the arena the trial
/// scratch ([`crate::scratch::TrialScratch`]) keeps warm so repeated
/// trials never reallocate. All buffers are reset, not freed, at the
/// start of every run.
#[derive(Default)]
pub(crate) struct ListBuffers {
    /// Remaining-predecessor counters per task.
    pub indeg: Vec<u32>,
    /// Start times per task (the run's output).
    pub start: Vec<u32>,
    /// One ready-heap per processor; min-heap via `Reverse`.
    pub heaps: Vec<BinaryHeap<Reverse<(i64, u64)>>>,
    /// Tasks scheduled in the current step.
    pub completed: Vec<u64>,
}

/// The list-scheduling engine proper: fills `bufs.start` and returns
/// the makespan. Both the allocating wrapper ([`list_schedule`]) and
/// the arena-reusing trial fast path run *this* code, so the two can
/// never diverge. `indeg_template`, when given, must be the per-task
/// in-degree vector of `instance` (precomputed once per trial batch);
/// otherwise it is derived here.
pub(crate) fn list_schedule_core(
    instance: &SweepInstance,
    assignment: &Assignment,
    priority: &[i64],
    release: Option<&[u32]>,
    indeg_template: Option<&[u32]>,
    bufs: &mut ListBuffers,
) -> u32 {
    let _span = telemetry::span!("sched.list_schedule");
    // Sampled once: the per-step ready-depth probe below is skipped
    // entirely on the disabled path.
    let recording = telemetry::enabled();
    let n = instance.num_cells();
    let k = instance.num_directions();
    let m = assignment.num_procs();
    assert_eq!(priority.len(), n * k, "one priority per task");
    assert_eq!(
        assignment.num_cells(),
        n,
        "assignment covers the instance cells"
    );
    if let Some(r) = release {
        assert!(r.len() >= k, "one release time per direction");
    }

    bufs.start.clear();
    bufs.start.resize(n * k, 0);
    if n == 0 {
        return 0;
    }
    let start = &mut bufs.start;

    bufs.indeg.clear();
    match indeg_template {
        Some(template) => {
            debug_assert_eq!(template.len(), n * k);
            bufs.indeg.extend_from_slice(template);
        }
        None => {
            bufs.indeg.resize(n * k, 0);
            for (i, dag) in instance.dags().iter().enumerate() {
                for v in 0..n as u32 {
                    bufs.indeg[TaskId::pack(v, i as u32, n).index()] = dag.in_degree(v);
                }
            }
        }
    }
    let indeg = &mut bufs.indeg;

    if bufs.heaps.len() < m {
        bufs.heaps.resize_with(m, BinaryHeap::new);
    }
    let heaps = &mut bufs.heaps[..m];
    heaps.iter_mut().for_each(BinaryHeap::clear);

    // Tasks whose predecessors are done but whose direction is not yet
    // released, bucketed by release time. Buckets are pre-sized to their
    // worst case — direction `d`'s tasks only ever enter bucket
    // `release[d]`, and at most all `n` of them do — so no bucket
    // reallocates mid-schedule (asserted at drain time below). The
    // whole structure is skipped (empty, allocation-free) when no
    // releases are in play — i.e. on the trial fast path.
    let max_release = release.map_or(0, |r| r[..k].iter().copied().max().unwrap_or(0));
    let mut release_buckets: Vec<Vec<u64>> = Vec::new();
    let mut bucket_caps: Vec<usize> = Vec::new();
    if let Some(r) = release {
        let mut bucket_cap = vec![0usize; max_release as usize + 1];
        for &rel in &r[..k] {
            if rel > 0 {
                bucket_cap[rel as usize] += n;
            }
        }
        release_buckets = bucket_cap.iter().map(|&c| Vec::with_capacity(c)).collect();
        bucket_caps = release_buckets.iter().map(Vec::capacity).collect();
    }

    let proc_of_task = |t: u64| -> usize { assignment.proc_of((t % n as u64) as u32) as usize };
    let dir_of_task = |t: u64| -> usize { (t / n as u64) as usize };

    // Seed with the sources of every DAG.
    let mut pending = n * k;
    for t in 0..(n * k) as u64 {
        if indeg[t as usize] == 0 {
            let rel = release.map_or(0, |r| r[dir_of_task(t)]);
            if rel > 0 {
                release_buckets[rel as usize].push(t);
            } else {
                heaps[proc_of_task(t)].push(Reverse((priority[t as usize], t)));
            }
        }
    }

    bufs.completed.clear();
    let completed = &mut bufs.completed;
    let mut ready_peak = 0usize;
    let mut t_now: u32 = 0;
    while pending > 0 {
        if recording {
            ready_peak = ready_peak.max(heaps.iter().map(|h| h.len()).sum());
        }
        if let Some(bucket) = release_buckets.get_mut(t_now as usize) {
            debug_assert!(
                bucket.capacity() == bucket_caps[t_now as usize],
                "release bucket {t_now} reallocated ({} -> {})",
                bucket_caps[t_now as usize],
                bucket.capacity()
            );
            for task in std::mem::take(bucket) {
                heaps[proc_of_task(task)].push(Reverse((priority[task as usize], task)));
            }
        }
        completed.clear();
        for heap in heaps.iter_mut() {
            if let Some(Reverse((_, task))) = heap.pop() {
                start[task as usize] = t_now;
                completed.push(task);
            }
        }
        pending -= completed.len();
        for &task in completed.iter() {
            let (v, dir) = TaskId(task).unpack(n);
            let dag = instance.dag(dir as usize);
            for &w in dag.successors(v) {
                let wt = TaskId::pack(w, dir, n).index();
                indeg[wt] -= 1;
                if indeg[wt] == 0 {
                    let rel = release.map_or(0, |r| r[dir as usize]);
                    if rel > t_now + 1 {
                        release_buckets[rel as usize].push(wt as u64);
                    } else {
                        heaps[assignment.proc_of(w) as usize]
                            .push(Reverse((priority[wt], wt as u64)));
                    }
                }
            }
        }
        t_now += 1;
        // Safety net: a feasible instance always makes progress once all
        // releases have fired; n·k + max_release bounds any valid schedule
        // produced here because some processor runs a task every step after
        // the last release.
        debug_assert!(
            (t_now as u64) <= (n * k) as u64 + max_release as u64 + 1,
            "list scheduler failed to make progress"
        );
    }
    if recording {
        telemetry::counter_add("sched.tasks_scheduled", (n * k) as u64);
        telemetry::counter_add("sched.list_schedule.steps", t_now as u64);
        telemetry::gauge_max("sched.list_schedule.ready_peak", ready_peak as f64);
    }
    // The loop exits the iteration that schedules the last pending
    // task, so the final step count is `max start + 1` — exactly
    // `Schedule::makespan`.
    t_now
}

/// FIFO list scheduling (all priorities equal) — the greedy baseline.
pub fn greedy_schedule(instance: &SweepInstance, assignment: Assignment) -> Schedule {
    let zeros = vec![0i64; instance.num_tasks()];
    list_schedule(instance, assignment, &zeros, None)
}

/// Left-shift compaction: replays the schedule as a list schedule whose
/// priorities are the original start times. By the standard left-shift
/// argument every task starts no later than before, so the makespan never
/// increases — useful as a post-pass on layer-sequential schedules
/// (Algorithms 1 and 3), where it recovers exactly the "with priorities"
/// variants.
pub fn compact(instance: &SweepInstance, schedule: &Schedule) -> Schedule {
    let priority: Vec<i64> = schedule.starts().iter().map(|&t| t as i64).collect();
    list_schedule(instance, schedule.assignment().clone(), &priority, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;
    use sweep_dag::TaskDag;

    fn chain_instance(n: usize, k: usize) -> SweepInstance {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let dag = TaskDag::from_edges(n, &edges);
        SweepInstance::new(n, vec![dag; k], "chain")
    }

    #[test]
    fn single_proc_schedules_everything_sequentially() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 1);
        let s = greedy_schedule(&inst, Assignment::single(40));
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan() as usize, inst.num_tasks());
    }

    #[test]
    fn chain_pipelines_across_directions() {
        // Identical chains pipeline: makespan ≈ n + k - 1 with enough procs.
        let inst = chain_instance(20, 4);
        let a = Assignment::round_robin(20, 8);
        let s = greedy_schedule(&inst, a);
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan(), 20 + 4 - 1);
    }

    #[test]
    fn priorities_steer_tie_breaks() {
        // Two independent cells on one processor; priority picks the order.
        let inst = SweepInstance::new(2, vec![TaskDag::edgeless(2)], "i");
        let a = Assignment::single(2);
        let s = list_schedule(&inst, a.clone(), &[5, 1], None);
        assert_eq!(s.start_of(TaskId::pack(1, 0, 2)), 0);
        assert_eq!(s.start_of(TaskId::pack(0, 0, 2)), 1);
        let s2 = list_schedule(&inst, a, &[1, 5], None);
        assert_eq!(s2.start_of(TaskId::pack(0, 0, 2)), 0);
    }

    #[test]
    fn release_times_delay_directions() {
        let inst = SweepInstance::new(1, vec![TaskDag::edgeless(1), TaskDag::edgeless(1)], "i");
        let a = Assignment::single(1);
        let s = list_schedule(&inst, a, &[0, 0], Some(&[0, 3]));
        assert_eq!(s.start_of(TaskId::pack(0, 0, 1)), 0);
        assert_eq!(s.start_of(TaskId::pack(0, 1, 1)), 3);
    }

    #[test]
    fn release_respected_for_late_ready_tasks() {
        // Chain 0->1 in direction 1 released at time 1: task (0,1) waits
        // for the release, (1,1) only for its predecessor.
        let inst = SweepInstance::new(
            2,
            vec![TaskDag::edgeless(2), TaskDag::from_edges(2, &[(0, 1)])],
            "i",
        );
        let a = Assignment::from_vec(vec![0, 1], 2);
        let s = list_schedule(&inst, a, &[0; 4], Some(&[0, 1]));
        validate(&inst, &s).unwrap();
        assert!(s.start_of(TaskId::pack(0, 1, 2)) >= 1);
        assert!(s.start_of(TaskId::pack(1, 1, 2)) > s.start_of(TaskId::pack(0, 1, 2)));
    }

    #[test]
    fn no_idle_when_work_available() {
        // Greedy list schedules are non-idling: with one direction, one
        // processor, and plenty of independent tasks, makespan = n.
        let inst = SweepInstance::new(10, vec![TaskDag::edgeless(10)], "i");
        let s = greedy_schedule(&inst, Assignment::single(10));
        assert_eq!(s.makespan(), 10);
    }

    #[test]
    fn all_schedules_valid_on_random_instances() {
        for seed in 0..5u64 {
            let inst = SweepInstance::random_layered(60, 4, 8, 3, seed);
            for m in [1usize, 2, 7, 16] {
                let a = Assignment::random_cells(60, m, seed ^ 0xabc);
                let s = greedy_schedule(&inst, a);
                validate(&inst, &s).unwrap();
                // Trivial bounds.
                assert!(s.makespan() as usize >= inst.num_tasks() / m);
                assert!(s.makespan() as usize <= inst.num_tasks());
            }
        }
    }

    #[test]
    fn compaction_never_increases_makespan() {
        use crate::random_delay::random_delay;
        for seed in 0..6u64 {
            let inst = SweepInstance::random_layered(70, 4, 7, 2, seed);
            let a = crate::assignment::Assignment::random_cells(70, 8, seed);
            // Layer-sequential schedules have idle gaps to reclaim.
            let s = random_delay(&inst, a, seed ^ 5);
            let c = compact(&inst, &s);
            validate(&inst, &c).unwrap();
            assert!(
                c.makespan() <= s.makespan(),
                "seed {seed}: compacted {} > original {}",
                c.makespan(),
                s.makespan()
            );
            // Per-task: nothing moves later.
            for (orig, new) in s.starts().iter().zip(c.starts()) {
                assert!(new <= orig, "task moved later: {new} > {orig}");
            }
        }
    }

    #[test]
    fn compaction_is_idempotent_on_greedy() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 2);
        let a = crate::assignment::Assignment::random_cells(40, 4, 3);
        let s = greedy_schedule(&inst, a);
        let c = compact(&inst, &s);
        assert_eq!(c.makespan(), s.makespan());
    }

    #[test]
    fn release_buckets_never_reallocate_on_tetonly() {
        // Exercises the drain-time capacity micro-assert (active under
        // debug assertions) on the tetonly preset with real random
        // delays — the workload the pre-sizing is tuned for.
        let mesh = sweep_mesh::MeshPreset::Tetonly.build_scaled(0.01).unwrap();
        let quad = sweep_quadrature::QuadratureSet::level_symmetric(2).unwrap();
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "tetonly");
        let a = Assignment::random_cells(inst.num_cells(), 8, 1);
        let s = crate::random_delay::random_delay_priorities(&inst, a, 7);
        validate(&inst, &s).unwrap();
    }

    #[test]
    #[should_panic(expected = "one priority per task")]
    fn wrong_priority_len_panics() {
        let inst = chain_instance(3, 1);
        list_schedule(&inst, Assignment::single(3), &[0, 0], None);
    }

    #[test]
    fn empty_instance() {
        let inst = SweepInstance::new(0, vec![TaskDag::edgeless(0)], "empty");
        let s = greedy_schedule(&inst, Assignment::single(0));
        assert_eq!(s.makespan(), 0);
    }
}
