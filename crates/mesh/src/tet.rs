//! Unstructured tetrahedral mesh representation.
//!
//! Built from raw `(vertices, cells)` connectivity; face adjacency, outward
//! normals, and centroids are derived here. This mirrors the inputs the paper
//! uses (unstructured tetrahedral meshes from LANL transport codes), which we
//! synthesize in [`crate::generator`].

use std::collections::HashMap;

use crate::face::{BoundaryFace, CellId, InteriorFace, SweepMesh};
use crate::geometry::{tet_centroid, tet_signed_volume, triangle_area_normal, Point3};

/// Errors raised while assembling a [`TetMesh`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A cell references a vertex index `>= vertices.len()`.
    VertexOutOfRange {
        /// Offending cell.
        cell: u32,
        /// Out-of-range vertex index.
        vertex: u32,
    },
    /// A cell has (numerically) zero volume, so no outward normals exist.
    DegenerateCell {
        /// Offending cell.
        cell: u32,
    },
    /// More than two cells share one triangular face — broken connectivity.
    NonManifoldFace {
        /// The cells incident to the face.
        cells: Vec<u32>,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::VertexOutOfRange { cell, vertex } => {
                write!(f, "cell {cell} references out-of-range vertex {vertex}")
            }
            MeshError::DegenerateCell { cell } => write!(f, "cell {cell} has zero volume"),
            MeshError::NonManifoldFace { cells } => {
                write!(f, "face shared by more than two cells: {cells:?}")
            }
        }
    }
}

impl std::error::Error for MeshError {}

/// An unstructured conforming tetrahedral mesh.
#[derive(Debug, Clone)]
pub struct TetMesh {
    vertices: Vec<Point3>,
    cells: Vec<[u32; 4]>,
    centroids: Vec<Point3>,
    volumes: Vec<f64>,
    interior: Vec<InteriorFace>,
    boundary: Vec<BoundaryFace>,
}

/// Incidences of one sorted triangle key: `(cell, local face vertices,
/// opposite vertex)`.
type FaceIncidences = Vec<(u32, [usize; 3], usize)>;

/// The four triangular faces of tet `(v0,v1,v2,v3)`, each listed with the
/// index of the opposite vertex.
const TET_FACES: [([usize; 3], usize); 4] = [
    ([1, 2, 3], 0),
    ([0, 2, 3], 1),
    ([0, 1, 3], 2),
    ([0, 1, 2], 3),
];

impl TetMesh {
    /// Assembles a mesh from raw connectivity. Derives centroids, volumes,
    /// and face adjacency with outward unit normals.
    pub fn new(vertices: Vec<Point3>, cells: Vec<[u32; 4]>) -> Result<TetMesh, MeshError> {
        let nv = vertices.len() as u32;
        for (ci, c) in cells.iter().enumerate() {
            for &v in c {
                if v >= nv {
                    return Err(MeshError::VertexOutOfRange {
                        cell: ci as u32,
                        vertex: v,
                    });
                }
            }
        }

        let mut centroids = Vec::with_capacity(cells.len());
        let mut volumes = Vec::with_capacity(cells.len());
        for (ci, c) in cells.iter().enumerate() {
            let [a, b, cc, d] = c.map(|v| vertices[v as usize]);
            let vol = tet_signed_volume(a, b, cc, d).abs();
            if vol < 1e-14 {
                return Err(MeshError::DegenerateCell { cell: ci as u32 });
            }
            centroids.push(tet_centroid(a, b, cc, d));
            volumes.push(vol);
        }

        // Group the four faces of every tet by their sorted vertex triple.
        let mut by_key: HashMap<[u32; 3], FaceIncidences> = HashMap::with_capacity(cells.len() * 2);
        for (ci, c) in cells.iter().enumerate() {
            for (fv, opp) in TET_FACES {
                let mut key = [c[fv[0]], c[fv[1]], c[fv[2]]];
                key.sort_unstable();
                by_key.entry(key).or_default().push((ci as u32, fv, opp));
            }
        }

        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        for (_key, inc) in by_key {
            match inc.as_slice() {
                [(ci, fv, opp)] => {
                    let c = &cells[*ci as usize];
                    let tri = fv.map(|l| vertices[c[l] as usize]);
                    let mut an = triangle_area_normal(tri[0], tri[1], tri[2]);
                    let area = 0.5 * an.norm();
                    // Orient outward: away from the opposite vertex.
                    let towards_opp = vertices[c[*opp] as usize] - tri[0];
                    if an.dot(towards_opp) > 0.0 {
                        an = -an;
                    }
                    boundary.push(BoundaryFace {
                        cell: CellId(*ci),
                        normal: an.normalized(),
                        area,
                    });
                }
                [(ca, fv, opp), (cb, ..)] => {
                    let c = &cells[*ca as usize];
                    let tri = fv.map(|l| vertices[c[l] as usize]);
                    let mut an = triangle_area_normal(tri[0], tri[1], tri[2]);
                    let area = 0.5 * an.norm();
                    // Orient from cell a into cell b (away from a's opposite
                    // vertex, which lies strictly inside cell a).
                    let towards_opp = vertices[c[*opp] as usize] - tri[0];
                    if an.dot(towards_opp) > 0.0 {
                        an = -an;
                    }
                    interior.push(InteriorFace {
                        a: CellId(*ca),
                        b: CellId(*cb),
                        normal: an.normalized(),
                        area,
                    });
                }
                many => {
                    return Err(MeshError::NonManifoldFace {
                        cells: many.iter().map(|(c, ..)| *c).collect(),
                    })
                }
            }
        }
        // Deterministic face order regardless of hash-map iteration.
        interior.sort_unstable_by_key(|f| (f.a, f.b));
        boundary.sort_unstable_by_key(|f| f.cell);

        Ok(TetMesh {
            vertices,
            cells,
            centroids,
            volumes,
            interior,
            boundary,
        })
    }

    /// Vertex coordinates.
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// Cell connectivity (vertex quadruples).
    pub fn cells(&self) -> &[[u32; 4]] {
        &self.cells
    }

    /// Cell volumes.
    pub fn volumes(&self) -> &[f64] {
        &self.volumes
    }

    /// All cell centroids (indexable by `CellId::index`).
    pub fn centroids(&self) -> &[Point3] {
        &self.centroids
    }

    /// Total mesh volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// Restricts the mesh to the given cells (dedup'd, order-preserving on
    /// the sorted unique set), renumbering cells densely. Unused vertices are
    /// dropped. Used by the generator to trim synthetic meshes to the exact
    /// cell counts reported in the paper.
    pub fn restrict_to(&self, keep: &[u32]) -> Result<TetMesh, MeshError> {
        let mut keep: Vec<u32> = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let mut vmap: HashMap<u32, u32> = HashMap::new();
        let mut vertices = Vec::new();
        let mut cells = Vec::with_capacity(keep.len());
        for &ci in &keep {
            let old = self.cells[ci as usize];
            let mut newc = [0u32; 4];
            for (s, &v) in newc.iter_mut().zip(old.iter()) {
                *s = *vmap.entry(v).or_insert_with(|| {
                    vertices.push(self.vertices[v as usize]);
                    (vertices.len() - 1) as u32
                });
            }
            cells.push(newc);
        }
        TetMesh::new(vertices, cells)
    }
}

impl SweepMesh for TetMesh {
    fn num_cells(&self) -> usize {
        self.cells.len()
    }
    fn interior_faces(&self) -> &[InteriorFace] {
        &self.interior
    }
    fn boundary_faces(&self) -> &[BoundaryFace] {
        &self.boundary
    }
    fn centroid(&self, c: CellId) -> Point3 {
        self.centroids[c.index()]
    }
    fn dim(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec3;

    /// Two unit-ish tets sharing the triangle (0,1,2).
    fn two_tets() -> TetMesh {
        let vertices = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.3, 0.3, 1.0),  // above
            Point3::new(0.3, 0.3, -1.0), // below
        ];
        let cells = vec![[0, 1, 2, 3], [0, 1, 2, 4]];
        TetMesh::new(vertices, cells).unwrap()
    }

    #[test]
    fn two_tets_share_one_interior_face() {
        let m = two_tets();
        assert_eq!(m.num_cells(), 2);
        assert_eq!(m.interior_faces().len(), 1);
        assert_eq!(m.boundary_faces().len(), 6);
        let f = m.interior_faces()[0];
        // Normal must point from cell a into cell b.
        let dir = m.centroid(f.b) - m.centroid(f.a);
        assert!(f.normal.dot(dir) > 0.0, "interior normal not oriented a->b");
        assert!((f.normal.norm() - 1.0).abs() < 1e-12);
        assert!((f.area - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_normals_point_outward() {
        let m = two_tets();
        for bf in m.boundary_faces() {
            // Outward means away from the incident cell centroid: moving
            // from the centroid along the normal should exit the domain, so
            // the normal must have positive dot with (any boundary-face
            // vertex - centroid)... we approximate with the opposite of the
            // vector towards the mesh barycenter.
            let bary = (m.centroid(CellId(0)) + m.centroid(CellId(1))) / 2.0;
            let c = m.centroid(bf.cell);
            // Not a strict invariant for wild shapes, but holds for this
            // convex two-tet configuration except for near-tangential faces.
            let _ = bary;
            assert!((bf.normal.norm() - 1.0).abs() < 1e-12);
            let _ = c;
        }
    }

    #[test]
    fn volume_is_sum_of_cell_volumes() {
        let m = two_tets();
        assert!((m.total_volume() - m.volumes().iter().sum::<f64>()).abs() < 1e-15);
        assert!(m.total_volume() > 0.0);
    }

    #[test]
    fn vertex_out_of_range_detected() {
        let vertices = vec![Point3::ZERO; 3];
        let err = TetMesh::new(vertices, vec![[0, 1, 2, 9]]).unwrap_err();
        assert!(matches!(err, MeshError::VertexOutOfRange { vertex: 9, .. }));
    }

    #[test]
    fn degenerate_cell_detected() {
        let vertices = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(3.0, 0.0, 0.0), // collinear: zero volume
        ];
        let err = TetMesh::new(vertices, vec![[0, 1, 2, 3]]).unwrap_err();
        assert!(matches!(err, MeshError::DegenerateCell { cell: 0 }));
    }

    #[test]
    fn non_manifold_face_detected() {
        // Three tets all sharing triangle (0,1,2).
        let vertices = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.3, 0.3, 1.0),
            Point3::new(0.3, 0.3, -1.0),
            Point3::new(0.9, 0.9, 1.0),
        ];
        let cells = vec![[0, 1, 2, 3], [0, 1, 2, 4], [0, 1, 2, 5]];
        let err = TetMesh::new(vertices, cells).unwrap_err();
        assert!(matches!(err, MeshError::NonManifoldFace { .. }));
    }

    #[test]
    fn restrict_to_keeps_subset() {
        let m = two_tets();
        let sub = m.restrict_to(&[1]).unwrap();
        assert_eq!(sub.num_cells(), 1);
        assert_eq!(sub.interior_faces().len(), 0);
        assert_eq!(sub.boundary_faces().len(), 4);
        assert_eq!(sub.vertices().len(), 4);
    }

    #[test]
    fn adjacency_csr_symmetric() {
        let m = two_tets();
        let (xadj, adjncy) = m.adjacency_csr();
        assert_eq!(xadj, vec![0, 1, 2]);
        assert_eq!(adjncy, vec![1, 0]);
    }

    #[test]
    fn mesh_error_display() {
        let e = MeshError::DegenerateCell { cell: 3 };
        assert!(e.to_string().contains("cell 3"));
        let v = Vec3::ZERO;
        assert_eq!(v.norm(), 0.0);
    }
}
