//! Minimal 3-D vector/point geometry used by the mesh substrate.
//!
//! The scheduling algorithms themselves never touch geometry; it exists so
//! that sweep directions can induce dependence digraphs through face normals,
//! exactly as in the paper's Figure 1.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A point or vector in 3-space. 2-D meshes embed in the `z = 0` plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// Alias used when a [`Vec3`] denotes a position rather than a direction.
pub type Point3 = Vec3;

impl Vec3 {
    /// The zero vector / origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Constructs a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the `sqrt` when comparing lengths).
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector in the same direction.
    ///
    /// # Panics
    /// Panics in debug builds if the vector is (near) zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-300, "normalizing a zero vector");
        self / n
    }

    /// Euclidean distance between two points.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Area-weighted normal of the triangle `(a, b, c)`; its norm is twice the
/// triangle area and its direction follows the right-hand rule on `a→b→c`.
#[inline]
pub fn triangle_area_normal(a: Point3, b: Point3, c: Point3) -> Vec3 {
    (b - a).cross(c - a)
}

/// Area of the triangle `(a, b, c)`.
#[inline]
pub fn triangle_area(a: Point3, b: Point3, c: Point3) -> f64 {
    0.5 * triangle_area_normal(a, b, c).norm()
}

/// Centroid of a triangle.
#[inline]
pub fn triangle_centroid(a: Point3, b: Point3, c: Point3) -> Point3 {
    (a + b + c) / 3.0
}

/// Signed volume of the tetrahedron `(a, b, c, d)` (positive when `d` lies on
/// the positive side of the oriented triangle `a→b→c`).
#[inline]
pub fn tet_signed_volume(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Centroid of a tetrahedron.
#[inline]
pub fn tet_centroid(a: Point3, b: Point3, c: Point3, d: Point3) -> Point3 {
    (a + b + c + d) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_and_cross_are_consistent() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        // cross product is orthogonal to both operands
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
        // Lagrange identity: |a x b|^2 = |a|^2 |b|^2 - (a.b)^2
        let lhs = c.norm2();
        let rhs = a.norm2() * b.norm2() - a.dot(b).powi(2);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn unit_triangle_area() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        assert!((triangle_area(a, b, c) - 0.5).abs() < EPS);
        let n = triangle_area_normal(a, b, c);
        // right-hand rule: +z
        assert!(n.z > 0.0 && n.x.abs() < EPS && n.y.abs() < EPS);
    }

    #[test]
    fn unit_tet_volume_and_sign() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        let d = Point3::new(0.0, 0.0, 1.0);
        let v = tet_signed_volume(a, b, c, d);
        assert!((v - 1.0 / 6.0).abs() < EPS);
        // swapping two vertices flips the sign
        assert!((tet_signed_volume(b, a, c, d) + 1.0 / 6.0).abs() < EPS);
    }

    #[test]
    fn tet_centroid_is_mean() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(4.0, 0.0, 0.0);
        let c = Point3::new(0.0, 4.0, 0.0);
        let d = Point3::new(0.0, 0.0, 4.0);
        assert_eq!(tet_centroid(a, b, c, d), Point3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(4.0, 5.0, 1.0);
        assert!((a.distance(b) - 5.0).abs() < EPS);
        assert!((b.distance(a) - 5.0).abs() < EPS);
    }
}
