//! Synthetic unstructured tetrahedral mesh generator.
//!
//! The paper evaluates on four proprietary LANL/Sandia tetrahedral meshes
//! which we cannot obtain; this module synthesizes unstructured stand-ins
//! (see DESIGN.md §5). The construction:
//!
//! 1. lay down a structured hexahedral scaffold over the requested domain,
//!    optionally *carving* hexes away with a shape predicate (e.g. the
//!    borehole of the `well_logging` mesh);
//! 2. jitter interior grid vertices by a fraction of the spacing so
//!    geometry — and hence face normals and sweep DAGs — is irregular;
//! 3. split every hex into 12 tetrahedra around its center vertex, choosing
//!    each quad face's diagonal through the face corner of minimum *random
//!    rank*. Because the rank is a property of the shared corners, the two
//!    hexes adjacent to a face pick the same diagonal and the mesh is
//!    conforming, while the diagonal pattern is spatially random;
//! 4. trim to an exact target cell count by keeping a breadth-first ball
//!    around the domain center, which preserves connectivity.
//!
//! The result has the properties the scheduling experiments stress: ≤4 face
//! neighbours per cell, irregular per-direction level widths, and DAG depth
//! `D = Θ(n^{1/3})`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use sweep_telemetry as telemetry;

use crate::face::{CellId, SweepMesh};
use crate::geometry::{Point3, Vec3};
use crate::tet::{MeshError, TetMesh};

/// Shape predicates used to carve hexes out of the scaffold.
#[derive(Debug, Clone)]
pub enum Carve {
    /// Keep everything (plain box domain).
    None,
    /// Remove hexes whose center lies within `radius` of the vertical axis
    /// through `(cx, cy)` — models the borehole of the `well_logging` mesh.
    CylinderHole {
        /// Axis x position.
        cx: f64,
        /// Axis y position.
        cy: f64,
        /// Hole radius.
        radius: f64,
    },
    /// Keep only hexes whose center lies inside the ellipsoid inscribed in
    /// the domain box (rounded domain).
    Ellipsoid,
}

impl Carve {
    fn keeps(&self, p: Point3, extent: Vec3) -> bool {
        match *self {
            Carve::None => true,
            Carve::CylinderHole { cx, cy, radius } => {
                let dx = p.x - cx;
                let dy = p.y - cy;
                dx * dx + dy * dy > radius * radius
            }
            Carve::Ellipsoid => {
                let u = (p.x - extent.x / 2.0) / (extent.x / 2.0);
                let v = (p.y - extent.y / 2.0) / (extent.y / 2.0);
                let w = (p.z - extent.z / 2.0) / (extent.z / 2.0);
                u * u + v * v + w * w <= 1.0
            }
        }
    }
}

/// Configuration for the synthetic mesh generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Hex count along x.
    pub nx: usize,
    /// Hex count along y.
    pub ny: usize,
    /// Hex count along z.
    pub nz: usize,
    /// Physical domain extent; spacing is `extent / n` per axis.
    pub extent: Vec3,
    /// Vertex jitter as a fraction of the local spacing, in `[0, 0.35)`.
    /// `0.0` yields a geometrically structured (but still randomly
    /// triangulated) mesh.
    pub jitter: f64,
    /// Carving predicate applied to hex centers.
    pub carve: Carve,
    /// RNG seed — the generator is fully deterministic given the config.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A unit-cube config with `n` hexes per side and default jitter.
    pub fn cube(n: usize, seed: u64) -> Self {
        GeneratorConfig {
            nx: n,
            ny: n,
            nz: n,
            extent: Vec3::new(1.0, 1.0, 1.0),
            jitter: 0.2,
            carve: Carve::None,
            seed,
        }
    }

    /// Number of tetrahedra the scaffold would produce before carving.
    pub fn max_cells(&self) -> usize {
        self.nx * self.ny * self.nz * 12
    }
}

/// Errors from the generator.
#[derive(Debug)]
pub enum GenerateError {
    /// Underlying mesh assembly failed (should not happen for valid configs).
    Mesh(MeshError),
    /// The carved scaffold has fewer cells than the requested target.
    TargetTooLarge {
        /// Cells available after carving.
        available: usize,
        /// Requested cell count.
        target: usize,
    },
    /// Degenerate configuration (zero hexes, excessive jitter, ...).
    BadConfig(String),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::Mesh(e) => write!(f, "mesh assembly failed: {e}"),
            GenerateError::TargetTooLarge { available, target } => {
                write!(
                    f,
                    "cannot trim to {target} cells, only {available} available"
                )
            }
            GenerateError::BadConfig(s) => write!(f, "bad generator config: {s}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<MeshError> for GenerateError {
    fn from(e: MeshError) -> Self {
        GenerateError::Mesh(e)
    }
}

/// Generates the full (untrimmed) synthetic mesh for `cfg`.
pub fn generate(cfg: &GeneratorConfig) -> Result<TetMesh, GenerateError> {
    let _span = telemetry::span!("mesh.generate");
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    if nx == 0 || ny == 0 || nz == 0 {
        return Err(GenerateError::BadConfig(
            "hex counts must be positive".into(),
        ));
    }
    if !(0.0..0.35).contains(&cfg.jitter) {
        return Err(GenerateError::BadConfig(format!(
            "jitter {} outside [0, 0.35)",
            cfg.jitter
        )));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let h = Vec3::new(
        cfg.extent.x / nx as f64,
        cfg.extent.y / ny as f64,
        cfg.extent.z / nz as f64,
    );

    // Grid corner vertices, jittered in the interior.
    let corner_id = |i: usize, j: usize, k: usize| (i * (ny + 1) + j) * (nz + 1) + k;
    let ncorners = (nx + 1) * (ny + 1) * (nz + 1);
    let mut vertices: Vec<Point3> = Vec::with_capacity(ncorners);
    for i in 0..=nx {
        for j in 0..=ny {
            for k in 0..=nz {
                let mut p = Point3::new(i as f64 * h.x, j as f64 * h.y, k as f64 * h.z);
                let interior_x = i > 0 && i < nx;
                let interior_y = j > 0 && j < ny;
                let interior_z = k > 0 && k < nz;
                if cfg.jitter > 0.0 {
                    if interior_x {
                        p.x += rng.random_range(-cfg.jitter..cfg.jitter) * h.x;
                    }
                    if interior_y {
                        p.y += rng.random_range(-cfg.jitter..cfg.jitter) * h.y;
                    }
                    if interior_z {
                        p.z += rng.random_range(-cfg.jitter..cfg.jitter) * h.z;
                    }
                }
                vertices.push(p);
            }
        }
    }

    // Random rank per corner: drives face-diagonal selection. A random
    // permutation guarantees distinct ranks, so the diagonal choice is
    // unambiguous and identical from both sides of a face.
    let mut rank: Vec<u32> = (0..ncorners as u32).collect();
    rank.shuffle(&mut rng);

    // 12-tet split of every kept hex.
    let mut cells: Vec<[u32; 4]> = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let center_geo = Point3::new(
                    (i as f64 + 0.5) * h.x,
                    (j as f64 + 0.5) * h.y,
                    (k as f64 + 0.5) * h.z,
                );
                if !cfg.carve.keeps(center_geo, cfg.extent) {
                    continue;
                }
                // The 8 corners, labelled cXYZ.
                let c = [
                    corner_id(i, j, k),             // c000
                    corner_id(i + 1, j, k),         // c100
                    corner_id(i, j + 1, k),         // c010
                    corner_id(i + 1, j + 1, k),     // c110
                    corner_id(i, j, k + 1),         // c001
                    corner_id(i + 1, j, k + 1),     // c101
                    corner_id(i, j + 1, k + 1),     // c011
                    corner_id(i + 1, j + 1, k + 1), // c111
                ];
                // Center vertex: mean of the (jittered) corners, so it stays
                // strictly inside the hex.
                let mut cp = Point3::ZERO;
                for &v in &c {
                    cp += vertices[v];
                }
                let center = (vertices.len()) as u32;
                vertices.push(cp / 8.0);

                // Six quad faces in cyclic corner order (indices into `c`).
                const QUADS: [[usize; 4]; 6] = [
                    [0, 1, 3, 2], // z-
                    [4, 5, 7, 6], // z+
                    [0, 1, 5, 4], // y-
                    [2, 3, 7, 6], // y+
                    [0, 2, 6, 4], // x-
                    [1, 3, 7, 5], // x+
                ];
                for q in QUADS {
                    let vq = q.map(|l| c[l] as u32);
                    // Diagonal through the minimum-rank corner.
                    let min_pos = (0..4)
                        .min_by_key(|&p| rank[vq[p] as usize])
                        .expect("quad has 4 corners");
                    let (t1, t2) = if min_pos == 0 || min_pos == 2 {
                        ([vq[0], vq[1], vq[2]], [vq[0], vq[2], vq[3]])
                    } else {
                        ([vq[1], vq[2], vq[3]], [vq[1], vq[3], vq[0]])
                    };
                    cells.push([t1[0], t1[1], t1[2], center]);
                    cells.push([t2[0], t2[1], t2[2], center]);
                }
            }
        }
    }
    if cells.is_empty() {
        return Err(GenerateError::BadConfig("carve removed every hex".into()));
    }
    Ok(TetMesh::new(vertices, cells)?)
}

/// Generates and then trims to exactly `target` cells by keeping the
/// breadth-first ball (over face adjacency) around the cell nearest the
/// domain barycenter. The trimmed mesh is connected by construction whenever
/// the scaffold's main component holds at least `target` cells.
pub fn generate_with_target(
    cfg: &GeneratorConfig,
    target: usize,
) -> Result<TetMesh, GenerateError> {
    let full = generate(cfg)?;
    if full.num_cells() < target {
        return Err(GenerateError::TargetTooLarge {
            available: full.num_cells(),
            target,
        });
    }
    if full.num_cells() == target {
        return Ok(full);
    }

    // Start BFS at the cell whose centroid is nearest the barycenter of all
    // centroids (robust against carved holes at the geometric center).
    let n = full.num_cells();
    let mut bary = Point3::ZERO;
    for c in 0..n {
        bary += full.centroid(CellId(c as u32));
    }
    bary = bary / n as f64;
    let start = (0..n)
        .min_by(|&a, &b| {
            let da = full.centroid(CellId(a as u32)).distance(bary);
            let db = full.centroid(CellId(b as u32)).distance(bary);
            da.partial_cmp(&db).expect("finite centroid distances")
        })
        .expect("non-empty mesh");

    let (xadj, adjncy) = full.adjacency_csr();
    let mut keep: Vec<u32> = Vec::with_capacity(target);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start as u32);
    seen[start] = true;
    while let Some(c) = queue.pop_front() {
        keep.push(c);
        if keep.len() == target {
            break;
        }
        let (s, e) = (xadj[c as usize] as usize, xadj[c as usize + 1] as usize);
        for &nb in &adjncy[s..e] {
            if !seen[nb as usize] {
                seen[nb as usize] = true;
                queue.push_back(nb);
            }
        }
    }
    if keep.len() < target {
        return Err(GenerateError::TargetTooLarge {
            available: keep.len(),
            target,
        });
    }
    Ok(full.restrict_to(&keep)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_generator_produces_expected_count() {
        let cfg = GeneratorConfig::cube(3, 42);
        let m = generate(&cfg).unwrap();
        assert_eq!(m.num_cells(), 3 * 3 * 3 * 12);
        assert_eq!(m.num_cells(), cfg.max_cells());
    }

    #[test]
    fn generated_mesh_is_connected_and_manifold() {
        let m = generate(&GeneratorConfig::cube(4, 7)).unwrap();
        assert_eq!(m.connected_component_size(), m.num_cells());
        // Every tet has exactly 4 faces; interior faces are counted once per
        // incident pair.
        let total_face_slots: usize = 2 * m.interior_faces().len() + m.boundary_faces().len();
        assert_eq!(total_face_slots, 4 * m.num_cells());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(&GeneratorConfig::cube(3, 99)).unwrap();
        let b = generate(&GeneratorConfig::cube(3, 99)).unwrap();
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(a.vertices().len(), b.vertices().len());
        for (va, vb) in a.vertices().iter().zip(b.vertices()) {
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::cube(3, 1)).unwrap();
        let b = generate(&GeneratorConfig::cube(3, 2)).unwrap();
        let same = a.vertices().iter().zip(b.vertices()).all(|(x, y)| x == y);
        assert!(!same, "jitter should depend on the seed");
    }

    #[test]
    fn trim_to_exact_target_preserves_connectivity() {
        let cfg = GeneratorConfig::cube(4, 5);
        let m = generate_with_target(&cfg, 500).unwrap();
        assert_eq!(m.num_cells(), 500);
        assert_eq!(m.connected_component_size(), 500);
    }

    #[test]
    fn trim_target_equal_to_full_size_is_identity() {
        let cfg = GeneratorConfig::cube(2, 5);
        let m = generate_with_target(&cfg, 2 * 2 * 2 * 12).unwrap();
        assert_eq!(m.num_cells(), 96);
    }

    #[test]
    fn target_too_large_rejected() {
        let cfg = GeneratorConfig::cube(2, 5);
        let err = generate_with_target(&cfg, 10_000).unwrap_err();
        assert!(matches!(err, GenerateError::TargetTooLarge { .. }));
    }

    #[test]
    fn cylinder_carve_removes_cells() {
        let mut cfg = GeneratorConfig::cube(5, 11);
        cfg.carve = Carve::CylinderHole {
            cx: 0.5,
            cy: 0.5,
            radius: 0.25,
        };
        let carved = generate(&cfg).unwrap();
        let full = generate(&GeneratorConfig::cube(5, 11)).unwrap();
        assert!(carved.num_cells() < full.num_cells());
        assert!(carved.num_cells() > 0);
    }

    #[test]
    fn ellipsoid_carve_rounds_the_domain() {
        let mut cfg = GeneratorConfig::cube(6, 3);
        cfg.carve = Carve::Ellipsoid;
        let carved = generate(&cfg).unwrap();
        // The inscribed ball removes the corners: ~ (1 - pi/6) of the volume.
        let frac = carved.num_cells() as f64 / (6.0 * 6.0 * 6.0 * 12.0);
        assert!(frac < 0.75 && frac > 0.3, "kept fraction {frac}");
    }

    #[test]
    fn zero_jitter_allowed_excessive_rejected() {
        let mut cfg = GeneratorConfig::cube(2, 0);
        cfg.jitter = 0.0;
        assert!(generate(&cfg).is_ok());
        cfg.jitter = 0.5;
        assert!(matches!(generate(&cfg), Err(GenerateError::BadConfig(_))));
    }

    #[test]
    fn bad_dims_rejected() {
        let mut cfg = GeneratorConfig::cube(0, 0);
        cfg.nx = 0;
        assert!(matches!(generate(&cfg), Err(GenerateError::BadConfig(_))));
    }
}
