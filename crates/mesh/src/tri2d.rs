//! 2-D unstructured triangular meshes (the setting of the paper's Figure 1).
//!
//! Used mainly in tests, documentation examples, and the quickstart, where a
//! small planar mesh is easier to reason about than a tetrahedral one. The
//! construction mirrors [`crate::generator`]: a structured quad grid whose
//! quads are split along a randomly-ranked diagonal, with jittered interior
//! vertices. Embedded in the `z = 0` plane; face "normals" are in-plane edge
//! normals.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use crate::face::{BoundaryFace, CellId, InteriorFace, SweepMesh};
use crate::geometry::{Point3, Vec3};

/// An unstructured conforming triangle mesh in the plane.
#[derive(Debug, Clone)]
pub struct TriMesh2d {
    vertices: Vec<Point3>,
    cells: Vec<[u32; 3]>,
    centroids: Vec<Point3>,
    interior: Vec<InteriorFace>,
    boundary: Vec<BoundaryFace>,
}

impl TriMesh2d {
    /// Assembles a triangle mesh from raw connectivity, deriving edge
    /// adjacency and in-plane unit normals oriented `a → b`.
    pub fn new(vertices: Vec<Point3>, cells: Vec<[u32; 3]>) -> Result<TriMesh2d, String> {
        for (ci, c) in cells.iter().enumerate() {
            for &v in c {
                if v as usize >= vertices.len() {
                    return Err(format!("cell {ci} references out-of-range vertex {v}"));
                }
            }
        }
        let mut centroids = Vec::with_capacity(cells.len());
        for c in &cells {
            let [a, b, cc] = c.map(|v| vertices[v as usize]);
            let area2 = (b - a).cross(cc - a).z;
            if area2.abs() < 1e-14 {
                return Err(format!("degenerate (zero-area) triangle {:?}", c));
            }
            centroids.push((a + b + cc) / 3.0);
        }

        // Group edges by sorted endpoint pair; each incidence records
        // `(cell, oriented edge endpoints)`.
        type EdgeIncidences = Vec<(u32, u32, u32)>;
        let mut by_key: HashMap<(u32, u32), EdgeIncidences> = HashMap::new();
        for (ci, c) in cells.iter().enumerate() {
            for e in 0..3 {
                let (u, v) = (c[e], c[(e + 1) % 3]);
                let key = (u.min(v), u.max(v));
                by_key.entry(key).or_default().push((ci as u32, u, v));
            }
        }

        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        for ((_, _), inc) in by_key {
            let edge_normal = |u: u32, v: u32, ci: u32| -> Vec3 {
                let pu = vertices[u as usize];
                let pv = vertices[v as usize];
                let t = pv - pu;
                // In-plane normal candidates: (t.y, -t.x) and (-t.y, t.x);
                // pick the one pointing away from the cell centroid.
                let nrm = Vec3::new(t.y, -t.x, 0.0);
                let mid = (pu + pv) / 2.0;
                if nrm.dot(mid - centroids[ci as usize]) >= 0.0 {
                    nrm
                } else {
                    -nrm
                }
            };
            match inc.as_slice() {
                [(ci, u, v)] => {
                    let t = vertices[*v as usize] - vertices[*u as usize];
                    boundary.push(BoundaryFace {
                        cell: CellId(*ci),
                        normal: edge_normal(*u, *v, *ci).normalized(),
                        area: t.norm(),
                    });
                }
                [(ca, u, v), (cb, ..)] => {
                    let t = vertices[*v as usize] - vertices[*u as usize];
                    interior.push(InteriorFace {
                        a: CellId(*ca),
                        b: CellId(*cb),
                        normal: edge_normal(*u, *v, *ca).normalized(),
                        area: t.norm(),
                    });
                }
                many => {
                    return Err(format!(
                        "edge shared by more than two triangles: {:?}",
                        many.iter().map(|(c, ..)| *c).collect::<Vec<_>>()
                    ))
                }
            }
        }
        interior.sort_unstable_by_key(|f| (f.a, f.b));
        boundary.sort_unstable_by_key(|f| f.cell);
        Ok(TriMesh2d {
            vertices,
            cells,
            centroids,
            interior,
            boundary,
        })
    }

    /// Generates an `nx × ny` jittered random-diagonal grid over
    /// `[0,1] × [0,1]` with `2·nx·ny` triangles.
    pub fn unit_square(nx: usize, ny: usize, jitter: f64, seed: u64) -> Result<TriMesh2d, String> {
        if nx == 0 || ny == 0 {
            return Err("grid dimensions must be positive".into());
        }
        if !(0.0..0.5).contains(&jitter) {
            return Err(format!("jitter {jitter} outside [0, 0.5)"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (hx, hy) = (1.0 / nx as f64, 1.0 / ny as f64);
        let vid = |i: usize, j: usize| (i * (ny + 1) + j) as u32;
        let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1));
        for i in 0..=nx {
            for j in 0..=ny {
                let mut p = Point3::new(i as f64 * hx, j as f64 * hy, 0.0);
                if jitter > 0.0 {
                    if i > 0 && i < nx {
                        p.x += rng.random_range(-jitter..jitter) * hx;
                    }
                    if j > 0 && j < ny {
                        p.y += rng.random_range(-jitter..jitter) * hy;
                    }
                }
                vertices.push(p);
            }
        }
        let mut rank: Vec<u32> = (0..vertices.len() as u32).collect();
        rank.shuffle(&mut rng);

        let mut cells = Vec::with_capacity(2 * nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                // Quad corners in cyclic order.
                let q = [vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)];
                let min_pos = (0..4)
                    .min_by_key(|&p| rank[q[p] as usize])
                    .expect("quad has 4 corners");
                if min_pos == 0 || min_pos == 2 {
                    cells.push([q[0], q[1], q[2]]);
                    cells.push([q[0], q[2], q[3]]);
                } else {
                    cells.push([q[1], q[2], q[3]]);
                    cells.push([q[1], q[3], q[0]]);
                }
            }
        }
        TriMesh2d::new(vertices, cells)
    }

    /// Vertex coordinates.
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// Triangle connectivity.
    pub fn cells(&self) -> &[[u32; 3]] {
        &self.cells
    }
}

impl SweepMesh for TriMesh2d {
    fn num_cells(&self) -> usize {
        self.cells.len()
    }
    fn interior_faces(&self) -> &[InteriorFace] {
        &self.interior
    }
    fn boundary_faces(&self) -> &[BoundaryFace] {
        &self.boundary
    }
    fn centroid(&self, c: CellId) -> Point3 {
        self.centroids[c.index()]
    }
    fn dim(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square_counts() {
        let m = TriMesh2d::unit_square(4, 3, 0.2, 1).unwrap();
        assert_eq!(m.num_cells(), 2 * 4 * 3);
        // Euler-ish sanity: every triangle has 3 edges, interior counted
        // twice, boundary once.
        assert_eq!(
            2 * m.interior_faces().len() + m.boundary_faces().len(),
            3 * m.num_cells()
        );
        assert_eq!(m.connected_component_size(), m.num_cells());
    }

    #[test]
    fn normals_are_unit_in_plane_and_oriented() {
        let m = TriMesh2d::unit_square(3, 3, 0.15, 2).unwrap();
        for f in m.interior_faces() {
            assert!((f.normal.norm() - 1.0).abs() < 1e-12);
            assert_eq!(f.normal.z, 0.0);
            let d = m.centroid(f.b) - m.centroid(f.a);
            assert!(f.normal.dot(d) > 0.0, "normal must point a -> b");
        }
        for f in m.boundary_faces() {
            assert!((f.normal.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = TriMesh2d::unit_square(5, 5, 0.2, 9).unwrap();
        let b = TriMesh2d::unit_square(5, 5, 0.2, 9).unwrap();
        assert_eq!(a.cells(), b.cells());
    }

    #[test]
    fn rejects_bad_params() {
        assert!(TriMesh2d::unit_square(0, 3, 0.1, 0).is_err());
        assert!(TriMesh2d::unit_square(3, 3, 0.9, 0).is_err());
    }

    #[test]
    fn rejects_degenerate_triangle() {
        let verts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
        ];
        assert!(TriMesh2d::new(verts, vec![[0, 1, 2]]).is_err());
    }

    #[test]
    fn rejects_nonmanifold_edge() {
        let verts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.5, 1.0, 0.0),
            Point3::new(0.5, -1.0, 0.0),
            Point3::new(1.5, 1.0, 0.0),
        ];
        // Three triangles all containing edge (0,1).
        let cells = vec![[0, 1, 2], [0, 1, 3], [0, 1, 4]];
        assert!(TriMesh2d::new(verts, cells).is_err());
    }

    #[test]
    fn dim_is_two() {
        let m = TriMesh2d::unit_square(2, 2, 0.0, 0).unwrap();
        assert_eq!(m.dim(), 2);
    }
}
