//! General polytopal meshes described directly by their face-level view.
//!
//! [`PolyMesh`] is the "assembled" mesh representation shared by the external
//! format importers ([`crate::import`]) and the cycle-rich synthetic presets
//! ([`crate::presets::PolyPreset`]). Unlike [`crate::TetMesh`] /
//! [`crate::TriMesh2d`], which derive faces from element connectivity, a
//! `PolyMesh` stores the face list explicitly: cells may be arbitrary
//! polytopes (or abstract cells whose interface normals are prescribed
//! directly), which is exactly what hanging-node and polytopal workloads
//! need — their induced per-direction digraphs can genuinely contain cycles.
//!
//! ```
//! use sweep_mesh::poly::PolyMesh;
//! use sweep_mesh::{CellId, InteriorFace, SweepMesh, Vec3};
//!
//! // Two abstract cells exchanging across a single +x interface.
//! let interior = vec![InteriorFace {
//!     a: CellId(0),
//!     b: CellId(1),
//!     normal: Vec3::new(1.0, 0.0, 0.0),
//!     area: 1.0,
//! }];
//! let centroids = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)];
//! let mesh = PolyMesh::from_parts(3, centroids, interior, vec![]).unwrap();
//! assert_eq!(mesh.num_cells(), 2);
//! assert_eq!(mesh.interior_faces().len(), 1);
//! ```

use crate::face::{BoundaryFace, CellId, InteriorFace, SweepMesh};
use crate::geometry::Point3;

/// A mesh given directly by cell centroids and oriented faces.
///
/// Invariants enforced by [`PolyMesh::from_parts`]:
///
/// * every face references cells in `0..num_cells`;
/// * no interior face connects a cell to itself;
/// * all normals are finite unit vectors and all areas are finite and
///   positive;
/// * all centroids are finite.
///
/// Optionally carries a triangle surface (`vertices` + `tris`, one triangle
/// per cell) for rendering; purely cosmetic and absent for abstract or
/// volumetric meshes.
#[derive(Debug, Clone)]
pub struct PolyMesh {
    dim: usize,
    centroids: Vec<Point3>,
    interior: Vec<InteriorFace>,
    boundary: Vec<BoundaryFace>,
    vertices: Vec<Point3>,
    tris: Vec<[u32; 3]>,
}

impl PolyMesh {
    /// Builds a mesh from explicit parts, validating the invariants listed on
    /// [`PolyMesh`]. The number of cells is `centroids.len()`.
    pub fn from_parts(
        dim: usize,
        centroids: Vec<Point3>,
        interior: Vec<InteriorFace>,
        boundary: Vec<BoundaryFace>,
    ) -> Result<PolyMesh, String> {
        if dim != 2 && dim != 3 {
            return Err(format!("dim must be 2 or 3, got {dim}"));
        }
        let n = centroids.len();
        if n == 0 {
            return Err("mesh has no cells".to_string());
        }
        if n > u32::MAX as usize {
            return Err(format!("too many cells ({n})"));
        }
        for (i, c) in centroids.iter().enumerate() {
            if !c.is_finite() {
                return Err(format!("centroid of cell {i} is not finite"));
            }
        }
        for (i, f) in interior.iter().enumerate() {
            if f.a.index() >= n || f.b.index() >= n {
                return Err(format!(
                    "interior face {i} references cell out of range ({}, {})",
                    f.a, f.b
                ));
            }
            if f.a == f.b {
                return Err(format!("interior face {i} connects cell {} to itself", f.a));
            }
            check_face(i, "interior", f.normal, f.area)?;
        }
        for (i, f) in boundary.iter().enumerate() {
            if f.cell.index() >= n {
                return Err(format!(
                    "boundary face {i} references cell out of range ({})",
                    f.cell
                ));
            }
            check_face(i, "boundary", f.normal, f.area)?;
        }
        Ok(PolyMesh {
            dim,
            centroids,
            interior,
            boundary,
            vertices: Vec::new(),
            tris: Vec::new(),
        })
    }

    /// Attaches a triangle surface for rendering (one entry of `tris` per
    /// surface triangle; indices into `vertices`). Fails if any index is out
    /// of range.
    pub fn with_surface(
        mut self,
        vertices: Vec<Point3>,
        tris: Vec<[u32; 3]>,
    ) -> Result<PolyMesh, String> {
        for (i, t) in tris.iter().enumerate() {
            for &v in t {
                if v as usize >= vertices.len() {
                    return Err(format!(
                        "surface triangle {i} references vertex {v} out of range"
                    ));
                }
            }
        }
        self.vertices = vertices;
        self.tris = tris;
        Ok(self)
    }

    /// Vertex positions of the attached render surface (empty if none).
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// Triangles of the attached render surface (empty if none). When the
    /// mesh came from a triangle-surface import there is exactly one triangle
    /// per cell, in cell order.
    pub fn tris(&self) -> &[[u32; 3]] {
        &self.tris
    }
}

fn check_face(i: usize, kind: &str, normal: crate::Vec3, area: f64) -> Result<(), String> {
    if !normal.is_finite() || (normal.norm() - 1.0).abs() > 1e-6 {
        return Err(format!("{kind} face {i} normal is not a unit vector"));
    }
    if !area.is_finite() || area <= 0.0 {
        return Err(format!("{kind} face {i} area is not positive"));
    }
    Ok(())
}

impl SweepMesh for PolyMesh {
    fn num_cells(&self) -> usize {
        self.centroids.len()
    }
    fn interior_faces(&self) -> &[InteriorFace] {
        &self.interior
    }
    fn boundary_faces(&self) -> &[BoundaryFace] {
        &self.boundary
    }
    fn centroid(&self, c: CellId) -> Point3 {
        self.centroids[c.index()]
    }
    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    fn unit_x_face(a: u32, b: u32) -> InteriorFace {
        InteriorFace {
            a: CellId(a),
            b: CellId(b),
            normal: Vec3::new(1.0, 0.0, 0.0),
            area: 1.0,
        }
    }

    #[test]
    fn rejects_out_of_range_and_self_loops() {
        let c = vec![Point3::ZERO, Point3::new(1.0, 0.0, 0.0)];
        assert!(PolyMesh::from_parts(3, c.clone(), vec![unit_x_face(0, 2)], vec![]).is_err());
        assert!(PolyMesh::from_parts(3, c.clone(), vec![unit_x_face(1, 1)], vec![]).is_err());
        assert!(PolyMesh::from_parts(3, c, vec![unit_x_face(0, 1)], vec![]).is_ok());
    }

    #[test]
    fn rejects_bad_normals_areas_and_dims() {
        let c = vec![Point3::ZERO, Point3::new(1.0, 0.0, 0.0)];
        let mut f = unit_x_face(0, 1);
        f.normal = Vec3::new(2.0, 0.0, 0.0);
        assert!(PolyMesh::from_parts(3, c.clone(), vec![f], vec![]).is_err());
        let mut f = unit_x_face(0, 1);
        f.area = 0.0;
        assert!(PolyMesh::from_parts(3, c.clone(), vec![f], vec![]).is_err());
        assert!(PolyMesh::from_parts(4, c.clone(), vec![], vec![]).is_err());
        assert!(PolyMesh::from_parts(3, vec![], vec![], vec![]).is_err());
        let mut bad = c.clone();
        bad[0].x = f64::NAN;
        assert!(PolyMesh::from_parts(3, bad, vec![], vec![]).is_err());
        let bf = BoundaryFace {
            cell: CellId(9),
            normal: Vec3::new(1.0, 0.0, 0.0),
            area: 1.0,
        };
        assert!(PolyMesh::from_parts(3, c, vec![], vec![bf]).is_err());
    }

    #[test]
    fn surface_attachment_validates_indices() {
        let c = vec![Point3::ZERO, Point3::new(1.0, 0.0, 0.0)];
        let m = PolyMesh::from_parts(3, c, vec![unit_x_face(0, 1)], vec![]).unwrap();
        let verts = vec![
            Point3::ZERO,
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        assert!(m
            .clone()
            .with_surface(verts.clone(), vec![[0, 1, 3]])
            .is_err());
        let m = m.with_surface(verts, vec![[0, 1, 2]]).unwrap();
        assert_eq!(m.tris().len(), 1);
        assert_eq!(m.vertices().len(), 3);
    }
}
