//! Mesh quality metrics.
//!
//! The synthetic meshes stand in for real transport-code meshes, so their
//! element quality should be defensible: no inverted or sliver elements
//! that a production discretization would reject. These metrics quantify
//! that (and are checked by tests on every preset).

use crate::geometry::{tet_signed_volume, triangle_area, Point3};
use crate::tet::TetMesh;

/// Quality summary of a tetrahedral mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Minimum cell volume.
    pub min_volume: f64,
    /// Maximum cell volume.
    pub max_volume: f64,
    /// Max/min volume ratio (grading).
    pub volume_ratio: f64,
    /// Minimum radius-ratio quality over all tets (`3·r_in/r_circ`-style
    /// normalized measure in `(0, 1]`, 1 = regular tetrahedron).
    pub min_radius_ratio: f64,
    /// Mean radius-ratio quality.
    pub mean_radius_ratio: f64,
    /// Worst face-adjacency count per cell (always ≤ 4 for tets).
    pub max_neighbors: usize,
}

/// Normalized radius-ratio quality of a single tetrahedron: a scaled
/// inradius/circumradius proxy `q = 6√6 · V / (A · L)` with `A` the total
/// face area and `L` the longest edge; `q = 1` for the regular tet,
/// `q → 0` for slivers.
pub fn tet_quality(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    let v = tet_signed_volume(a, b, c, d).abs();
    let area = triangle_area(a, b, c)
        + triangle_area(a, b, d)
        + triangle_area(a, c, d)
        + triangle_area(b, c, d);
    let edges = [
        a.distance(b),
        a.distance(c),
        a.distance(d),
        b.distance(c),
        b.distance(d),
        c.distance(d),
    ];
    let lmax = edges.into_iter().fold(0.0f64, f64::max);
    if area <= 0.0 || lmax <= 0.0 {
        return 0.0;
    }
    // Inradius r = 3V/A; normalize by the longest edge. The constant makes
    // the regular tetrahedron score exactly 1.
    let r = 3.0 * v / area;
    let q = r / lmax;
    q / REGULAR_TET_R_OVER_L
}

/// `r_in / L` for the regular tetrahedron: `1/(2√6)`.
const REGULAR_TET_R_OVER_L: f64 = 0.204_124_145_231_931_5;

/// Computes the [`QualityReport`] of a mesh.
pub fn quality_report(mesh: &TetMesh) -> QualityReport {
    use crate::face::SweepMesh;
    let mut min_volume = f64::INFINITY;
    let mut max_volume = 0.0f64;
    let mut min_q = f64::INFINITY;
    let mut sum_q = 0.0f64;
    for cell in mesh.cells() {
        let [a, b, c, d] = cell.map(|v| mesh.vertices()[v as usize]);
        let vol = tet_signed_volume(a, b, c, d).abs();
        min_volume = min_volume.min(vol);
        max_volume = max_volume.max(vol);
        let q = tet_quality(a, b, c, d);
        min_q = min_q.min(q);
        sum_q += q;
    }
    let n = mesh.num_cells().max(1);
    let (xadj, _) = mesh.adjacency_csr();
    let max_neighbors = (0..mesh.num_cells())
        .map(|c| (xadj[c + 1] - xadj[c]) as usize)
        .max()
        .unwrap_or(0);
    QualityReport {
        min_volume,
        max_volume,
        volume_ratio: if min_volume > 0.0 {
            max_volume / min_volume
        } else {
            f64::INFINITY
        },
        min_radius_ratio: if min_q.is_finite() { min_q } else { 0.0 },
        mean_radius_ratio: sum_q / n as f64,
        max_neighbors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::presets::MeshPreset;

    #[test]
    fn regular_tet_scores_one() {
        // Vertices of a regular tetrahedron.
        let s = 1.0 / 2f64.sqrt();
        let a = Point3::new(1.0, 0.0, -s);
        let b = Point3::new(-1.0, 0.0, -s);
        let c = Point3::new(0.0, 1.0, s);
        let d = Point3::new(0.0, -1.0, s);
        let q = tet_quality(a, b, c, d);
        assert!((q - 1.0).abs() < 1e-9, "regular tet quality {q}");
    }

    #[test]
    fn sliver_scores_near_zero() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        let d = Point3::new(0.5, 0.5, 1e-6); // almost coplanar
        assert!(tet_quality(a, b, c, d) < 1e-3);
    }

    #[test]
    fn quality_bounded_by_one() {
        let mesh = generate(&GeneratorConfig::cube(4, 9)).unwrap();
        for cell in mesh.cells() {
            let [a, b, c, d] = cell.map(|v| mesh.vertices()[v as usize]);
            let q = tet_quality(a, b, c, d);
            assert!(q > 0.0 && q <= 1.0 + 1e-9, "q = {q}");
        }
    }

    #[test]
    fn generated_meshes_have_sane_quality() {
        let mesh = MeshPreset::Tetonly.build_scaled(0.01).unwrap();
        let r = quality_report(&mesh);
        assert!(r.min_volume > 0.0);
        assert!(r.volume_ratio < 100.0, "grading {:.1}", r.volume_ratio);
        assert!(
            r.min_radius_ratio > 0.01,
            "worst tet {:.4}",
            r.min_radius_ratio
        );
        assert!(
            r.mean_radius_ratio > 0.3,
            "mean quality {:.3}",
            r.mean_radius_ratio
        );
        assert!(r.max_neighbors <= 4);
    }

    #[test]
    fn structured_mesh_quality_is_higher_than_jittered() {
        let mut cfg = GeneratorConfig::cube(4, 2);
        cfg.jitter = 0.0;
        let structured = quality_report(&generate(&cfg).unwrap());
        cfg.jitter = 0.3;
        let jittered = quality_report(&generate(&cfg).unwrap());
        assert!(structured.min_radius_ratio > jittered.min_radius_ratio);
    }
}
