//! Legacy-VTK export of tetrahedral meshes with optional per-cell scalar
//! fields (processor assignment, scalar flux, sweep level, …) so results
//! can be inspected in ParaView/VisIt — the standard workflow around
//! transport codes.

use std::fmt::Write as _;

use crate::face::SweepMesh;
use crate::tet::TetMesh;

/// Serializes the mesh as a legacy VTK (`.vtk`) unstructured grid.
/// `cell_fields` are `(name, values)` pairs with one value per cell.
///
/// # Errors
/// Returns an error when a field's length does not match the cell count
/// or a field name contains whitespace.
pub fn to_vtk(mesh: &TetMesh, cell_fields: &[(&str, &[f64])]) -> Result<String, String> {
    for (name, values) in cell_fields {
        if values.len() != mesh.num_cells() {
            return Err(format!(
                "field '{name}' has {} values for {} cells",
                values.len(),
                mesh.num_cells()
            ));
        }
        if name.chars().any(char::is_whitespace) || name.is_empty() {
            return Err(format!("invalid field name '{name}'"));
        }
    }
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    out.push_str("sweep-scheduling mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n");
    let _ = writeln!(out, "POINTS {} double", mesh.vertices().len());
    for v in mesh.vertices() {
        let _ = writeln!(out, "{} {} {}", v.x, v.y, v.z);
    }
    let nc = mesh.num_cells();
    let _ = writeln!(out, "CELLS {} {}", nc, nc * 5);
    for c in mesh.cells() {
        let _ = writeln!(out, "4 {} {} {} {}", c[0], c[1], c[2], c[3]);
    }
    let _ = writeln!(out, "CELL_TYPES {nc}");
    for _ in 0..nc {
        out.push_str("10\n"); // VTK_TETRA
    }
    if !cell_fields.is_empty() {
        let _ = writeln!(out, "CELL_DATA {nc}");
        for (name, values) in cell_fields {
            let _ = writeln!(out, "SCALARS {name} double 1\nLOOKUP_TABLE default");
            for v in *values {
                let _ = writeln!(out, "{v}");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn vtk_structure_is_complete() {
        let mesh = generate(&GeneratorConfig::cube(2, 1)).unwrap();
        let field: Vec<f64> = (0..mesh.num_cells()).map(|c| c as f64).collect();
        let vtk = to_vtk(&mesh, &[("cell_id", &field)]).unwrap();
        assert!(vtk.starts_with("# vtk DataFile"));
        assert!(vtk.contains(&format!("POINTS {} double", mesh.vertices().len())));
        assert!(vtk.contains(&format!(
            "CELLS {} {}",
            mesh.num_cells(),
            mesh.num_cells() * 5
        )));
        assert!(vtk.contains("CELL_TYPES"));
        assert!(vtk.contains("SCALARS cell_id double 1"));
        // One scalar line per cell.
        let data_section = vtk.split("LOOKUP_TABLE default\n").nth(1).unwrap();
        assert_eq!(data_section.lines().count(), mesh.num_cells());
    }

    #[test]
    fn no_fields_is_fine() {
        let mesh = generate(&GeneratorConfig::cube(2, 1)).unwrap();
        let vtk = to_vtk(&mesh, &[]).unwrap();
        assert!(!vtk.contains("CELL_DATA"));
    }

    #[test]
    fn bad_fields_rejected() {
        let mesh = generate(&GeneratorConfig::cube(2, 1)).unwrap();
        assert!(to_vtk(&mesh, &[("short", &[1.0])]).is_err());
        let field = vec![0.0; mesh.num_cells()];
        assert!(to_vtk(&mesh, &[("bad name", &field)]).is_err());
        assert!(to_vtk(&mesh, &[("", &field)]).is_err());
    }
}
