//! SVG rendering of 2-D triangle meshes with per-cell coloring — zero
//! dependencies, viewable in any browser. Used to visualize processor
//! assignments, sweep levels, and flux fields on the paper's Figure-1
//! setting (examples render the 3-D meshes via [`crate::vtk`] instead).

use std::fmt::Write as _;

use crate::face::SweepMesh;
use crate::geometry::Point3;
use crate::poly::PolyMesh;
use crate::tri2d::TriMesh2d;

/// How per-cell scalar values map to colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMap {
    /// Blue → red linear ramp over the value range (continuous fields).
    BlueRed,
    /// Categorical palette cycling over 12 distinct hues (labels such as
    /// processor or block ids).
    Categorical,
}

/// Renders the mesh as an SVG with each triangle filled according to
/// `values` (one per cell) under the chosen [`ColorMap`].
///
/// # Errors
/// Returns an error when `values.len() != num_cells` or any value is not
/// finite.
pub fn to_svg(
    mesh: &TriMesh2d,
    values: &[f64],
    map: ColorMap,
    width_px: u32,
) -> Result<String, String> {
    render(
        mesh.vertices(),
        mesh.cells(),
        mesh.num_cells(),
        values,
        map,
        width_px,
    )
}

/// Renders an imported surface mesh ([`PolyMesh`] with an attached triangle
/// surface, one triangle per cell) exactly like [`to_svg`]. Fails when the
/// mesh carries no render surface (e.g. volumetric `.msh` imports).
pub fn poly_to_svg(
    mesh: &PolyMesh,
    values: &[f64],
    map: ColorMap,
    width_px: u32,
) -> Result<String, String> {
    if mesh.tris().len() != mesh.num_cells() {
        return Err(format!(
            "mesh has no per-cell render surface ({} triangles for {} cells)",
            mesh.tris().len(),
            mesh.num_cells()
        ));
    }
    render(
        mesh.vertices(),
        mesh.tris(),
        mesh.num_cells(),
        values,
        map,
        width_px,
    )
}

fn render(
    vertices: &[Point3],
    tris: &[[u32; 3]],
    n: usize,
    values: &[f64],
    map: ColorMap,
    width_px: u32,
) -> Result<String, String> {
    if values.len() != n {
        return Err(format!("{} values for {} cells", values.len(), n));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err("values must be finite".into());
    }
    if width_px == 0 {
        return Err("width must be positive".into());
    }
    // Bounding box.
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for v in vertices {
        min_x = min_x.min(v.x);
        max_x = max_x.max(v.x);
        min_y = min_y.min(v.y);
        max_y = max_y.max(v.y);
    }
    let span_x = (max_x - min_x).max(1e-12);
    let span_y = (max_y - min_y).max(1e-12);
    let scale = width_px as f64 / span_x;
    let height_px = (span_y * scale).ceil() as u32;

    let (vmin, vmax) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let range = (vmax - vmin).max(1e-300);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    );
    for (c, tri) in tris.iter().enumerate() {
        let color = match map {
            ColorMap::BlueRed => {
                let t = (values[c] - vmin) / range;
                let r = (255.0 * t) as u8;
                let b = (255.0 * (1.0 - t)) as u8;
                format!("rgb({r},64,{b})")
            }
            ColorMap::Categorical => {
                const PALETTE: [&str; 12] = [
                    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1",
                    "#ff9da7", "#9c755f", "#bab0ac", "#1b9e77", "#d95f02",
                ];
                PALETTE[(values[c].abs() as usize) % PALETTE.len()].to_string()
            }
        };
        let mut points = String::new();
        for &vid in tri {
            let p = vertices[vid as usize];
            let x = (p.x - min_x) * scale;
            // SVG y grows downward; flip so the mesh appears upright.
            let y = (max_y - p.y) * scale;
            let _ = write!(points, "{x:.2},{y:.2} ");
        }
        let _ = writeln!(
            out,
            r##"  <polygon points="{}" fill="{color}" stroke="#333" stroke-width="0.3"/>"##,
            points.trim_end()
        );
        let _ = c;
    }
    out.push_str("</svg>\n");
    Ok(out)
}

/// Convenience: renders the sweep level of every cell for one direction's
/// level map (`level_of[cell]`), blue (upstream) to red (downstream) —
/// the wavefront picture of the paper's Figure 1(b).
pub fn levels_svg(mesh: &TriMesh2d, level_of: &[u32], width_px: u32) -> Result<String, String> {
    let values: Vec<f64> = level_of.iter().map(|&l| l as f64).collect();
    to_svg(mesh, &values, ColorMap::BlueRed, width_px)
}

/// Sanity helper used by tests: count `<polygon` occurrences.
pub fn polygon_count(svg: &str) -> usize {
    svg.matches("<polygon").count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::CellId;

    fn mesh() -> TriMesh2d {
        TriMesh2d::unit_square(4, 4, 0.15, 1).unwrap()
    }

    #[test]
    fn svg_has_one_polygon_per_cell() {
        let m = mesh();
        let values: Vec<f64> = (0..m.num_cells()).map(|c| c as f64).collect();
        let svg = to_svg(&m, &values, ColorMap::BlueRed, 400).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(polygon_count(&svg), m.num_cells());
    }

    #[test]
    fn categorical_palette_cycles() {
        let m = mesh();
        let values: Vec<f64> = (0..m.num_cells()).map(|c| (c % 3) as f64).collect();
        let svg = to_svg(&m, &values, ColorMap::Categorical, 300).unwrap();
        assert!(svg.contains("#4e79a7"));
        assert!(svg.contains("#f28e2b"));
        assert!(svg.contains("#e15759"));
    }

    #[test]
    fn levels_svg_renders() {
        use crate::face::SweepMesh as _;
        let m = mesh();
        // Fake levels: x-coordinate band.
        let levels: Vec<u32> = (0..m.num_cells() as u32)
            .map(|c| (m.centroid(CellId(c)).x * 4.0) as u32)
            .collect();
        let svg = levels_svg(&m, &levels, 200).unwrap();
        assert_eq!(polygon_count(&svg), m.num_cells());
    }

    #[test]
    fn bad_inputs_rejected() {
        let m = mesh();
        assert!(to_svg(&m, &[1.0], ColorMap::BlueRed, 100).is_err());
        let mut vals = vec![0.0; m.num_cells()];
        vals[0] = f64::NAN;
        assert!(to_svg(&m, &vals, ColorMap::BlueRed, 100).is_err());
        let vals = vec![0.0; m.num_cells()];
        assert!(to_svg(&m, &vals, ColorMap::BlueRed, 0).is_err());
    }

    #[test]
    fn poly_svg_renders_imported_surface() {
        let obj = b"v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3\nf 2 4 3\n";
        let got = crate::import::import_bytes(obj, crate::import::ImportFormat::Obj).unwrap();
        let svg = poly_to_svg(&got.mesh, &[0.0, 1.0], ColorMap::BlueRed, 200).unwrap();
        assert_eq!(polygon_count(&svg), 2);
        // A surface-less mesh is rejected.
        let bare = crate::PolyPreset::Pillow.build(2).unwrap();
        assert!(poly_to_svg(&bare, &[0.0, 1.0], ColorMap::BlueRed, 200).is_err());
    }

    #[test]
    fn constant_field_is_fine() {
        let m = mesh();
        let vals = vec![7.5; m.num_cells()];
        let svg = to_svg(&m, &vals, ColorMap::BlueRed, 100).unwrap();
        assert_eq!(polygon_count(&svg), m.num_cells());
    }
}
