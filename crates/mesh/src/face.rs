//! Face-level view of a mesh: the only mesh information sweep scheduling
//! actually consumes.
//!
//! A sweep direction `ω` induces a dependence edge across every interior face
//! whose unit normal `n` (oriented from cell [`InteriorFace::a`] towards cell
//! [`InteriorFace::b`]) satisfies `n · ω > 0` — cell `a` is then *upstream*
//! of cell `b` in that direction. Everything else about the mesh (vertex
//! coordinates, element shapes) is irrelevant to the scheduler, so the
//! [`SweepMesh`] trait exposes exactly this view and lets the DAG-induction
//! code work uniformly over 3-D tetrahedral and 2-D triangular meshes.

use crate::geometry::{Point3, Vec3};

/// Identifier of a mesh cell. Cells are densely numbered `0..num_cells`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

impl CellId {
    /// The cell's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A face shared by two cells.
#[derive(Debug, Clone, Copy)]
pub struct InteriorFace {
    /// First incident cell; `normal` points from `a` into `b`.
    pub a: CellId,
    /// Second incident cell.
    pub b: CellId,
    /// Unit normal oriented from `a` towards `b`.
    pub normal: Vec3,
    /// Face area (length in 2-D).
    pub area: f64,
}

/// A face on the domain boundary, incident to exactly one cell.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryFace {
    /// The unique incident cell.
    pub cell: CellId,
    /// Unit outward normal (pointing out of the domain).
    pub normal: Vec3,
    /// Face area (length in 2-D).
    pub area: f64,
}

/// The mesh interface consumed by DAG induction, partitioning, and the toy
/// transport solver.
pub trait SweepMesh {
    /// Number of cells; cells are identified by `CellId(0..num_cells)`.
    fn num_cells(&self) -> usize;

    /// All interior (two-cell) faces.
    fn interior_faces(&self) -> &[InteriorFace];

    /// All boundary (one-cell) faces.
    fn boundary_faces(&self) -> &[BoundaryFace];

    /// Centroid of a cell — used for geometric cycle breaking and plots.
    fn centroid(&self, c: CellId) -> Point3;

    /// Spatial dimension (2 or 3).
    fn dim(&self) -> usize;

    /// Undirected cell-adjacency graph in CSR form:
    /// `(xadj, adjncy)` with neighbours of cell `c` in
    /// `adjncy[xadj[c]..xadj[c+1]]`. This is the graph handed to the
    /// partitioner (the paper's METIS input).
    fn adjacency_csr(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.num_cells();
        let faces = self.interior_faces();
        let mut deg = vec![0u32; n];
        for f in faces {
            deg[f.a.index()] += 1;
            deg[f.b.index()] += 1;
        }
        let mut xadj = vec![0u32; n + 1];
        for c in 0..n {
            xadj[c + 1] = xadj[c] + deg[c];
        }
        let mut adjncy = vec![0u32; xadj[n] as usize];
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        for f in faces {
            adjncy[cursor[f.a.index()] as usize] = f.b.0;
            cursor[f.a.index()] += 1;
            adjncy[cursor[f.b.index()] as usize] = f.a.0;
            cursor[f.b.index()] += 1;
        }
        (xadj, adjncy)
    }

    /// Number of cells reachable from cell 0 by face adjacency; equals
    /// `num_cells` iff the mesh is connected.
    fn connected_component_size(&self) -> usize {
        let (xadj, adjncy) = self.adjacency_csr();
        let n = self.num_cells();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 0usize;
        while let Some(c) = stack.pop() {
            count += 1;
            let (s, e) = (xadj[c as usize] as usize, xadj[c as usize + 1] as usize);
            for &nb in &adjncy[s..e] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-cell mesh: cells 0 and 1 share one face with normal
    /// +x (pointing from 0 into 1).
    struct TwoCells;

    impl SweepMesh for TwoCells {
        fn num_cells(&self) -> usize {
            2
        }
        fn interior_faces(&self) -> &[InteriorFace] {
            const F: [InteriorFace; 1] = [InteriorFace {
                a: CellId(0),
                b: CellId(1),
                normal: Vec3 {
                    x: 1.0,
                    y: 0.0,
                    z: 0.0,
                },
                area: 1.0,
            }];
            &F
        }
        fn boundary_faces(&self) -> &[BoundaryFace] {
            &[]
        }
        fn centroid(&self, c: CellId) -> Point3 {
            Point3::new(c.0 as f64, 0.0, 0.0)
        }
        fn dim(&self) -> usize {
            3
        }
    }

    #[test]
    fn adjacency_of_two_cells() {
        let m = TwoCells;
        let (xadj, adjncy) = m.adjacency_csr();
        assert_eq!(xadj, vec![0, 1, 2]);
        assert_eq!(adjncy, vec![1, 0]);
        assert_eq!(m.connected_component_size(), 2);
    }

    #[test]
    fn cell_id_display_and_index() {
        assert_eq!(CellId(7).to_string(), "c7");
        assert_eq!(CellId(7).index(), 7);
    }
}
