//! # sweep-mesh — unstructured mesh substrate for sweep scheduling
//!
//! This crate provides the mesh layer underneath the sweep-scheduling
//! algorithms of Anil Kumar, Marathe, Parthasarathy, Srinivasan & Zust,
//! *Provable Algorithms for Parallel Sweep Scheduling on Unstructured
//! Meshes* (IPPS 2005):
//!
//! * [`TetMesh`] / [`TriMesh2d`] — conforming unstructured tetrahedral and
//!   triangular meshes with derived face adjacency and oriented unit
//!   normals;
//! * [`SweepMesh`] — the face-level trait the DAG-induction code consumes
//!   (a sweep direction `ω` depends cell `a` before cell `b` across a face
//!   whose `a→b` normal has `n · ω > 0`);
//! * [`generator`] — synthetic unstructured tet-mesh generation (structured
//!   scaffold + random-rank diagonal splits + vertex jitter + BFS trimming);
//! * [`MeshPreset`] — stand-ins for the paper's four evaluation meshes
//!   (`tetonly`, `well_logging`, `long`, `prismtet`) with exact paper cell
//!   counts;
//! * [`import`] — external mesh ingestion (Wavefront `.obj` surfaces and
//!   Gmsh `.msh` v4 ASCII tet meshes) with typed errors, validation
//!   diagnostics, and hanging-node T-junction stitching (see `MESHES.md`);
//! * [`PolyPreset`] / [`PolyMesh`] — polytopal meshes with prescribed
//!   interface normals whose induced sweep digraphs provably contain cycles.
//!
//! ```
//! use sweep_mesh::{MeshPreset, SweepMesh};
//!
//! let mesh = MeshPreset::Tetonly.build_scaled(0.01).unwrap();
//! assert_eq!(mesh.num_cells(), 315); // 1% of the paper's 31 481 cells
//! assert!(mesh.interior_faces().len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod face;
pub mod generator;
pub mod geometry;
pub mod import;
pub mod poly;
pub mod presets;
pub mod quality;
pub mod svg;
pub mod tet;
pub mod tri2d;
pub mod vtk;

pub use face::{BoundaryFace, CellId, InteriorFace, SweepMesh};
pub use generator::{generate, generate_with_target, Carve, GenerateError, GeneratorConfig};
pub use geometry::{Point3, Vec3};
pub use import::{import_bytes, ImportError, ImportFormat, ImportReport, Imported};
pub use poly::PolyMesh;
pub use presets::{MeshPreset, PolyPreset};
pub use quality::{quality_report, tet_quality, QualityReport};
pub use svg::{levels_svg, poly_to_svg, to_svg as to_svg_2d, ColorMap};
pub use tet::{MeshError, TetMesh};
pub use tri2d::TriMesh2d;
pub use vtk::to_vtk;
