//! Synthetic stand-ins for the four meshes of the paper's §5.
//!
//! | preset | paper cells | domain flavour |
//! |--------|-------------|----------------|
//! | `tetonly`      | 31 481  | roughly cubic block |
//! | `well_logging` | 43 012  | block with a vertical borehole carved out |
//! | `long`         | 61 737  | elongated 4:1:1 bar |
//! | `prismtet`     | 118 211 | large block, anisotropic (prism-like) cells |
//!
//! Cell counts match the paper exactly; geometry is synthetic (see
//! DESIGN.md §5 for the substitution argument). Every preset also supports a
//! `scale ∈ (0, 1]` factor producing a smaller mesh of the same shape with
//! `⌈scale · cells⌉` cells, used by tests and smoke-mode benchmarks.

use sweep_telemetry as telemetry;

use crate::generator::{generate_with_target, Carve, GenerateError, GeneratorConfig};
use crate::geometry::Vec3;
use crate::tet::TetMesh;

/// The four evaluation meshes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshPreset {
    /// 31 481 cells, cubic domain.
    Tetonly,
    /// 43 012 cells, borehole domain.
    WellLogging,
    /// 61 737 cells, elongated domain.
    Long,
    /// 118 211 cells, anisotropic cells.
    Prismtet,
}

impl MeshPreset {
    /// All presets, smallest first.
    pub const ALL: [MeshPreset; 4] = [
        MeshPreset::Tetonly,
        MeshPreset::WellLogging,
        MeshPreset::Long,
        MeshPreset::Prismtet,
    ];

    /// The paper's cell count for this mesh.
    pub fn paper_cells(self) -> usize {
        match self {
            MeshPreset::Tetonly => 31_481,
            MeshPreset::WellLogging => 43_012,
            MeshPreset::Long => 61_737,
            MeshPreset::Prismtet => 118_211,
        }
    }

    /// The mesh's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MeshPreset::Tetonly => "tetonly",
            MeshPreset::WellLogging => "well_logging",
            MeshPreset::Long => "long",
            MeshPreset::Prismtet => "prismtet",
        }
    }

    /// Parses a paper mesh name.
    pub fn from_name(name: &str) -> Option<MeshPreset> {
        MeshPreset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Builds the full-size synthetic stand-in (exact paper cell count).
    pub fn build(self) -> Result<TetMesh, GenerateError> {
        self.build_scaled(1.0)
    }

    /// Builds a geometrically similar mesh with `⌈scale · paper_cells⌉`
    /// cells, `0 < scale ≤ 1`.
    pub fn build_scaled(self, scale: f64) -> Result<TetMesh, GenerateError> {
        let _span = telemetry::span!("mesh.build");
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(GenerateError::BadConfig(format!(
                "scale {scale} outside (0, 1]"
            )));
        }
        let target = ((self.paper_cells() as f64 * scale).ceil() as usize).max(16);
        let cfg = self.config_for_target(target);
        generate_with_target(&cfg, target)
    }

    /// Generator configuration whose scaffold comfortably exceeds `target`
    /// cells while keeping this preset's aspect ratio and carving.
    fn config_for_target(self, target: usize) -> GeneratorConfig {
        // Aspect ratios (hex counts proportional to these) and carving.
        let (ax, ay, az, carve, extent, seed) = match self {
            MeshPreset::Tetonly => (
                1.0,
                1.0,
                1.0,
                Carve::None,
                Vec3::new(1.0, 1.0, 1.0),
                0x7e70u64,
            ),
            MeshPreset::WellLogging => (
                1.0,
                1.0,
                1.0,
                Carve::CylinderHole {
                    cx: 0.5,
                    cy: 0.5,
                    radius: 0.18,
                },
                Vec3::new(1.0, 1.0, 1.0),
                0x3e11u64,
            ),
            MeshPreset::Long => (
                4.0,
                1.0,
                1.0,
                Carve::None,
                Vec3::new(4.0, 1.0, 1.0),
                0x10e6u64,
            ),
            MeshPreset::Prismtet => (
                1.0,
                1.0,
                0.6,
                Carve::None,
                Vec3::new(1.0, 1.0, 0.6),
                0x9215u64,
            ),
        };
        // Solve for a scale factor s with 12 * (ax*s)(ay*s)(az*s) >= margin * target.
        let kept_fraction = match carve {
            Carve::CylinderHole { radius, .. } => 1.0 - std::f64::consts::PI * radius * radius,
            _ => 1.0,
        };
        let margin = 1.25; // headroom for BFS trimming
        let s = (margin * target as f64 / (12.0 * ax * ay * az * kept_fraction)).cbrt();
        GeneratorConfig {
            nx: ((ax * s).ceil() as usize).max(2),
            ny: ((ay * s).ceil() as usize).max(2),
            nz: ((az * s).ceil() as usize).max(2),
            extent,
            jitter: 0.2,
            carve,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::SweepMesh;

    #[test]
    fn names_round_trip() {
        for p in MeshPreset::ALL {
            assert_eq!(MeshPreset::from_name(p.name()), Some(p));
        }
        assert_eq!(MeshPreset::from_name("nope"), None);
    }

    #[test]
    fn scaled_tetonly_has_requested_cells() {
        let m = MeshPreset::Tetonly.build_scaled(0.02).unwrap();
        let want = (31_481f64 * 0.02).ceil() as usize;
        assert_eq!(m.num_cells(), want);
        assert_eq!(m.connected_component_size(), m.num_cells());
    }

    #[test]
    fn scaled_well_logging_builds_with_hole() {
        let m = MeshPreset::WellLogging.build_scaled(0.02).unwrap();
        assert_eq!(m.num_cells(), (43_012f64 * 0.02).ceil() as usize);
    }

    #[test]
    fn scaled_long_is_elongated() {
        let m = MeshPreset::Long.build_scaled(0.02).unwrap();
        // Bounding box must reflect the 4:1:1 domain.
        let (mut maxx, mut maxy) = (0.0f64, 0.0f64);
        for v in m.vertices() {
            maxx = maxx.max(v.x);
            maxy = maxy.max(v.y);
        }
        assert!(
            maxx > 2.0 * maxy,
            "domain should be elongated: {maxx} vs {maxy}"
        );
    }

    #[test]
    fn scaled_prismtet_builds() {
        let m = MeshPreset::Prismtet.build_scaled(0.01).unwrap();
        assert_eq!(m.num_cells(), (118_211f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn bad_scale_rejected() {
        assert!(MeshPreset::Tetonly.build_scaled(0.0).is_err());
        assert!(MeshPreset::Tetonly.build_scaled(1.5).is_err());
    }

    #[test]
    fn paper_cell_counts_match_paper() {
        assert_eq!(MeshPreset::Tetonly.paper_cells(), 31_481);
        assert_eq!(MeshPreset::WellLogging.paper_cells(), 43_012);
        assert_eq!(MeshPreset::Long.paper_cells(), 61_737);
        assert_eq!(MeshPreset::Prismtet.paper_cells(), 118_211);
    }
}
