//! Synthetic stand-ins for the four meshes of the paper's §5.
//!
//! | preset | paper cells | domain flavour |
//! |--------|-------------|----------------|
//! | `tetonly`      | 31 481  | roughly cubic block |
//! | `well_logging` | 43 012  | block with a vertical borehole carved out |
//! | `long`         | 61 737  | elongated 4:1:1 bar |
//! | `prismtet`     | 118 211 | large block, anisotropic (prism-like) cells |
//!
//! Cell counts match the paper exactly; geometry is synthetic (see
//! DESIGN.md §5 for the substitution argument). Every preset also supports a
//! `scale ∈ (0, 1]` factor producing a smaller mesh of the same shape with
//! `⌈scale · cells⌉` cells, used by tests and smoke-mode benchmarks.

use sweep_telemetry as telemetry;

use crate::face::{BoundaryFace, CellId, InteriorFace};
use crate::generator::{generate_with_target, Carve, GenerateError, GeneratorConfig};
use crate::geometry::Vec3;
use crate::poly::PolyMesh;
use crate::tet::TetMesh;

/// The four evaluation meshes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshPreset {
    /// 31 481 cells, cubic domain.
    Tetonly,
    /// 43 012 cells, borehole domain.
    WellLogging,
    /// 61 737 cells, elongated domain.
    Long,
    /// 118 211 cells, anisotropic cells.
    Prismtet,
}

impl MeshPreset {
    /// All presets, smallest first.
    pub const ALL: [MeshPreset; 4] = [
        MeshPreset::Tetonly,
        MeshPreset::WellLogging,
        MeshPreset::Long,
        MeshPreset::Prismtet,
    ];

    /// The paper's cell count for this mesh.
    pub fn paper_cells(self) -> usize {
        match self {
            MeshPreset::Tetonly => 31_481,
            MeshPreset::WellLogging => 43_012,
            MeshPreset::Long => 61_737,
            MeshPreset::Prismtet => 118_211,
        }
    }

    /// The mesh's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MeshPreset::Tetonly => "tetonly",
            MeshPreset::WellLogging => "well_logging",
            MeshPreset::Long => "long",
            MeshPreset::Prismtet => "prismtet",
        }
    }

    /// Parses a paper mesh name.
    pub fn from_name(name: &str) -> Option<MeshPreset> {
        MeshPreset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Builds the full-size synthetic stand-in (exact paper cell count).
    pub fn build(self) -> Result<TetMesh, GenerateError> {
        self.build_scaled(1.0)
    }

    /// Builds a geometrically similar mesh with `⌈scale · paper_cells⌉`
    /// cells, `0 < scale ≤ 1`.
    pub fn build_scaled(self, scale: f64) -> Result<TetMesh, GenerateError> {
        let _span = telemetry::span!("mesh.build");
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(GenerateError::BadConfig(format!(
                "scale {scale} outside (0, 1]"
            )));
        }
        let target = ((self.paper_cells() as f64 * scale).ceil() as usize).max(16);
        let cfg = self.config_for_target(target);
        generate_with_target(&cfg, target)
    }

    /// Generator configuration whose scaffold comfortably exceeds `target`
    /// cells while keeping this preset's aspect ratio and carving.
    fn config_for_target(self, target: usize) -> GeneratorConfig {
        // Aspect ratios (hex counts proportional to these) and carving.
        let (ax, ay, az, carve, extent, seed) = match self {
            MeshPreset::Tetonly => (
                1.0,
                1.0,
                1.0,
                Carve::None,
                Vec3::new(1.0, 1.0, 1.0),
                0x7e70u64,
            ),
            MeshPreset::WellLogging => (
                1.0,
                1.0,
                1.0,
                Carve::CylinderHole {
                    cx: 0.5,
                    cy: 0.5,
                    radius: 0.18,
                },
                Vec3::new(1.0, 1.0, 1.0),
                0x3e11u64,
            ),
            MeshPreset::Long => (
                4.0,
                1.0,
                1.0,
                Carve::None,
                Vec3::new(4.0, 1.0, 1.0),
                0x10e6u64,
            ),
            MeshPreset::Prismtet => (
                1.0,
                1.0,
                0.6,
                Carve::None,
                Vec3::new(1.0, 1.0, 0.6),
                0x9215u64,
            ),
        };
        // Solve for a scale factor s with 12 * (ax*s)(ay*s)(az*s) >= margin * target.
        let kept_fraction = match carve {
            Carve::CylinderHole { radius, .. } => 1.0 - std::f64::consts::PI * radius * radius,
            _ => 1.0,
        };
        let margin = 1.25; // headroom for BFS trimming
        let s = (margin * target as f64 / (12.0 * ax * ay * az * kept_fraction)).cbrt();
        GeneratorConfig {
            nx: ((ax * s).ceil() as usize).max(2),
            ny: ((ay * s).ceil() as usize).max(2),
            nz: ((az * s).ceil() as usize).max(2),
            extent,
            jitter: 0.2,
            carve,
            seed,
        }
    }
}

/// Synthetic polytopal meshes whose induced dependence digraphs **provably
/// contain cycles**, making `break_cycles` and the SW001 cycle witnesses a
/// first-class tested workload rather than an edge case.
///
/// These are [`PolyMesh`]es: their interface normals are prescribed directly
/// instead of being derived from element geometry, which is what lets the
/// cycle guarantees below be proved rather than found by search. (Conforming
/// tet meshes built by [`MeshPreset`] are acyclic in practice; the paper's
/// §3 cycle-breaking step exists precisely for degenerate/polytopal inputs
/// like these.)
///
/// Per-direction cycle guarantees (see each variant):
///
/// * [`PolyPreset::Ring`] — a directed cycle for every `ω` with `ω·ẑ ≠ 0`;
/// * [`PolyPreset::TripleRing`] — a directed cycle for **every** unit `ω`;
/// * [`PolyPreset::Pillow`] — a 2-cycle for **every** unit `ω`.
///
/// ```
/// use sweep_mesh::{PolyPreset, SweepMesh};
///
/// let mesh = PolyPreset::Pillow.build(8).unwrap();
/// assert_eq!(mesh.num_cells(), 8);
/// assert_eq!(mesh.connected_component_size(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolyPreset {
    /// `n ≥ 3` cells around a circle; every adjacent pair `i → i+1 (mod n)`
    /// shares an interface whose normal is exactly `ẑ`.
    ///
    /// **Cycle proof.** For any sweep direction `ω` with `ω·ẑ > 0` every
    /// interface induces the edge `i → i+1`, so the cells form a directed
    /// Hamiltonian cycle; for `ω·ẑ < 0` every edge reverses, which is again
    /// a cycle. Only directions lying exactly in the `z = 0` plane induce no
    /// edges at all.
    Ring,
    /// Three bridged rings whose interface normals are `x̂`, `ŷ` and `ẑ`
    /// respectively.
    ///
    /// **Cycle proof.** Any unit `ω` has `max(|ω_x|, |ω_y|, |ω_z|) ≥ 1/√3`,
    /// so at least one ring's normal satisfies `|n·ω| ≥ 1/√3 > 0` and that
    /// ring is a directed cycle by the [`PolyPreset::Ring`] argument. Hence
    /// **every** direction of **every** quadrature set induces a cycle.
    TripleRing,
    /// `n` cells (rounded up to even) in bridged pairs; each pair shares
    /// **four** interfaces, all oriented `2j → 2j+1`, whose normals are the
    /// four outward normals of a regular tetrahedron:
    /// `(±1, ±1, ±1)/√3` with an even number of minus signs.
    ///
    /// **Cycle proof.** Those four normals form a tight frame:
    /// `Σᵢ (nᵢ·ω)² = (4/3)|ω|²` and `Σᵢ nᵢ = 0`. For a unit `ω` the first
    /// identity gives `maxᵢ |nᵢ·ω| ≥ 1/√3`, and the second forces the four
    /// dot products to have both signs (they sum to zero and are not all
    /// zero). A positive dot induces `2j → 2j+1`, a negative one induces
    /// `2j+1 → 2j` — a 2-cycle for **every** unit direction.
    Pillow,
}

impl PolyPreset {
    /// All polytopal presets.
    pub const ALL: [PolyPreset; 3] = [PolyPreset::Ring, PolyPreset::TripleRing, PolyPreset::Pillow];

    /// Canonical name used by the CLI and docs.
    pub fn name(self) -> &'static str {
        match self {
            PolyPreset::Ring => "ring",
            PolyPreset::TripleRing => "triple_ring",
            PolyPreset::Pillow => "pillow",
        }
    }

    /// Parses a polytopal preset name.
    pub fn from_name(name: &str) -> Option<PolyPreset> {
        PolyPreset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Minimum admissible cell count for [`PolyPreset::build`].
    pub fn min_cells(self) -> usize {
        match self {
            PolyPreset::Ring => 3,
            PolyPreset::TripleRing => 9,
            PolyPreset::Pillow => 2,
        }
    }

    /// Builds the preset with exactly `cells` cells (Pillow rounds up to the
    /// next even count). Fails below [`PolyPreset::min_cells`].
    pub fn build(self, cells: usize) -> Result<PolyMesh, String> {
        let _span = telemetry::span!("mesh.build");
        if cells < self.min_cells() {
            return Err(format!(
                "{} needs at least {} cells, got {cells}",
                self.name(),
                self.min_cells()
            ));
        }
        if cells > 1 << 22 {
            return Err(format!("{} cell count {cells} too large", self.name()));
        }
        match self {
            PolyPreset::Ring => Ok(build_rings(&[(cells, Vec3::new(0.0, 0.0, 1.0))])),
            PolyPreset::TripleRing => {
                let a = cells / 3;
                let b = (cells - a) / 2;
                let c = cells - a - b;
                Ok(build_rings(&[
                    (a.max(3), Vec3::new(1.0, 0.0, 0.0)),
                    (b.max(3), Vec3::new(0.0, 1.0, 0.0)),
                    (c.max(3), Vec3::new(0.0, 0.0, 1.0)),
                ]))
            }
            PolyPreset::Pillow => Ok(build_pillow(cells.div_ceil(2))),
        }
    }
}

/// Lays out one or more rings of cells, each around its own axis, bridged in
/// sequence so the mesh stays connected. Ring `k` is centred at
/// `(4k, 0, 0)` with its cells on a unit circle perpendicular to its axis.
fn build_rings(rings: &[(usize, Vec3)]) -> PolyMesh {
    let mut centroids = Vec::new();
    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    let mut ring_start = 0u32;
    for (k, &(n, axis)) in rings.iter().enumerate() {
        let center = Vec3::new(4.0 * k as f64, 0.0, 0.0);
        // Orthonormal basis (u, v) of the plane perpendicular to `axis`.
        let u = if axis.z.abs() > 0.5 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        let u = (u - axis * u.dot(axis)).normalized();
        let v = axis.cross(u);
        for i in 0..n {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let radial = u * theta.cos() + v * theta.sin();
            centroids.push(center + radial);
            interior.push(InteriorFace {
                a: CellId(ring_start + i as u32),
                b: CellId(ring_start + ((i + 1) % n) as u32),
                normal: axis,
                area: 1.0,
            });
            boundary.push(BoundaryFace {
                cell: CellId(ring_start + i as u32),
                normal: radial,
                area: 1.0,
            });
        }
        if k > 0 {
            // Bridge to the previous ring along +x so the mesh is connected.
            interior.push(InteriorFace {
                a: CellId(ring_start - 1),
                b: CellId(ring_start),
                normal: Vec3::new(1.0, 0.0, 0.0),
                area: 1.0,
            });
        }
        ring_start += n as u32;
    }
    PolyMesh::from_parts(3, centroids, interior, boundary)
        .unwrap_or_else(|e| unreachable!("ring preset invariant violated: {e}"))
}

/// `pairs` bridged cell pairs; each pair shares the four regular-tet
/// interfaces described on [`PolyPreset::Pillow`].
fn build_pillow(pairs: usize) -> PolyMesh {
    let s = 1.0 / 3f64.sqrt();
    let tet_normals = [
        Vec3::new(s, s, s),
        Vec3::new(s, -s, -s),
        Vec3::new(-s, s, -s),
        Vec3::new(-s, -s, s),
    ];
    let mut centroids = Vec::new();
    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    for j in 0..pairs {
        let (a, b) = (CellId(2 * j as u32), CellId(2 * j as u32 + 1));
        centroids.push(Vec3::new(3.0 * j as f64, 0.0, 0.0));
        centroids.push(Vec3::new(3.0 * j as f64 + 0.5, 0.25, 0.0));
        for n in tet_normals {
            interior.push(InteriorFace {
                a,
                b,
                normal: n,
                area: 0.25,
            });
        }
        for cell in [a, b] {
            boundary.push(BoundaryFace {
                cell,
                normal: Vec3::new(0.0, 0.0, 1.0),
                area: 1.0,
            });
        }
        if j > 0 {
            interior.push(InteriorFace {
                a: CellId(2 * j as u32 - 1),
                b: a,
                normal: Vec3::new(1.0, 0.0, 0.0),
                area: 1.0,
            });
        }
    }
    PolyMesh::from_parts(3, centroids, interior, boundary)
        .unwrap_or_else(|e| unreachable!("pillow preset invariant violated: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::SweepMesh;

    #[test]
    fn names_round_trip() {
        for p in MeshPreset::ALL {
            assert_eq!(MeshPreset::from_name(p.name()), Some(p));
        }
        assert_eq!(MeshPreset::from_name("nope"), None);
    }

    #[test]
    fn scaled_tetonly_has_requested_cells() {
        let m = MeshPreset::Tetonly.build_scaled(0.02).unwrap();
        let want = (31_481f64 * 0.02).ceil() as usize;
        assert_eq!(m.num_cells(), want);
        assert_eq!(m.connected_component_size(), m.num_cells());
    }

    #[test]
    fn scaled_well_logging_builds_with_hole() {
        let m = MeshPreset::WellLogging.build_scaled(0.02).unwrap();
        assert_eq!(m.num_cells(), (43_012f64 * 0.02).ceil() as usize);
    }

    #[test]
    fn scaled_long_is_elongated() {
        let m = MeshPreset::Long.build_scaled(0.02).unwrap();
        // Bounding box must reflect the 4:1:1 domain.
        let (mut maxx, mut maxy) = (0.0f64, 0.0f64);
        for v in m.vertices() {
            maxx = maxx.max(v.x);
            maxy = maxy.max(v.y);
        }
        assert!(
            maxx > 2.0 * maxy,
            "domain should be elongated: {maxx} vs {maxy}"
        );
    }

    #[test]
    fn scaled_prismtet_builds() {
        let m = MeshPreset::Prismtet.build_scaled(0.01).unwrap();
        assert_eq!(m.num_cells(), (118_211f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn bad_scale_rejected() {
        assert!(MeshPreset::Tetonly.build_scaled(0.0).is_err());
        assert!(MeshPreset::Tetonly.build_scaled(1.5).is_err());
    }

    #[test]
    fn poly_names_round_trip() {
        for p in PolyPreset::ALL {
            assert_eq!(PolyPreset::from_name(p.name()), Some(p));
        }
        assert_eq!(PolyPreset::from_name("nope"), None);
    }

    #[test]
    fn poly_presets_build_connected_with_exact_counts() {
        for (p, cells) in [
            (PolyPreset::Ring, 12),
            (PolyPreset::TripleRing, 13),
            (PolyPreset::Pillow, 10),
        ] {
            let m = p.build(cells).unwrap();
            assert_eq!(m.num_cells(), cells, "{}", p.name());
            assert_eq!(m.connected_component_size(), cells, "{}", p.name());
            assert!(!m.boundary_faces().is_empty());
        }
        // Pillow rounds odd counts up to even.
        assert_eq!(PolyPreset::Pillow.build(7).unwrap().num_cells(), 8);
    }

    #[test]
    fn poly_presets_reject_tiny_and_huge() {
        assert!(PolyPreset::Ring.build(2).is_err());
        assert!(PolyPreset::TripleRing.build(8).is_err());
        assert!(PolyPreset::Pillow.build(1).is_err());
        assert!(PolyPreset::Ring.build((1 << 22) + 1).is_err());
    }

    /// The Pillow cycle argument, checked numerically: for any unit ω the
    /// four pair-interface dot products contain both signs.
    #[test]
    fn pillow_interfaces_have_both_signs_for_sampled_directions() {
        let m = PolyPreset::Pillow.build(2).unwrap();
        let dirs = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0).normalized(),
            Vec3::new(-0.3, 0.9, 0.2).normalized(),
            Vec3::new(0.577, -0.577, 0.577).normalized(),
        ];
        for omega in dirs {
            let dots: Vec<f64> = m
                .interior_faces()
                .iter()
                .map(|f| f.normal.dot(omega))
                .collect();
            assert!(
                dots.iter().any(|&d| d > 1e-9),
                "no positive dot for {omega:?}"
            );
            assert!(
                dots.iter().any(|&d| d < -1e-9),
                "no negative dot for {omega:?}"
            );
        }
    }

    #[test]
    fn paper_cell_counts_match_paper() {
        assert_eq!(MeshPreset::Tetonly.paper_cells(), 31_481);
        assert_eq!(MeshPreset::WellLogging.paper_cells(), 43_012);
        assert_eq!(MeshPreset::Long.paper_cells(), 61_737);
        assert_eq!(MeshPreset::Prismtet.paper_cells(), 118_211);
    }
}
