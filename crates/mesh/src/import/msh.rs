//! Gmsh `.msh` version 4 ASCII parser and tetrahedral assembler.
//!
//! Accepted subset (see `MESHES.md`): `$MeshFormat` version 4.x, file-type 0
//! (ASCII); sparse node tags in `$Nodes` entity blocks; `$Elements` blocks
//! whose 3-D elements are 4-node tetrahedra (type 4). Lower-dimensional
//! elements (points, lines, surface triangles — commonly present as boundary
//! markers) are skipped; any other 3-D element type is a typed
//! [`ImportError::UnsupportedElement`]. Unknown sections are skipped whole.
//!
//! Assembly generalizes [`crate::TetMesh`]: faces are grouped by sorted
//! vertex triple, but instead of *rejecting* non-conforming connectivity the
//! assembler records diagnostics and — uniquely here — **stitches
//! hanging-node T-junctions**: an unmatched fine face whose vertices all lie
//! within a coarse unmatched face (projected, with a generous off-plane
//! slab to admit warped refinement) becomes an interior face between the two
//! cells, using the fine face's own geometry for the normal. Meshes stitched
//! this way are precisely the ones whose induced sweep digraphs can contain
//! cycles.

use std::collections::HashMap;

use super::{check_entity_count, ImportError, ImportReport, MAX_UNMATCHED_FOR_RESOLUTION};
use crate::face::{BoundaryFace, CellId, InteriorFace};
use crate::geometry::{
    tet_centroid, tet_signed_volume, triangle_area_normal, triangle_centroid, Point3, Vec3,
};
use crate::poly::PolyMesh;

/// Line cursor carrying 1-based line numbers and skipping blank lines.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    input_len: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor {
            lines: text.lines().enumerate(),
            input_len: text.len(),
        }
    }

    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        for (i, raw) in self.lines.by_ref() {
            let t = raw.trim();
            if !t.is_empty() {
                return Some((i + 1, t));
            }
        }
        None
    }

    fn expect(&mut self, section: &'static str, want: &str) -> Result<(), ImportError> {
        let (line, got) = self
            .next_content()
            .ok_or(ImportError::Truncated { section })?;
        if got != want {
            return Err(ImportError::Syntax {
                line,
                msg: format!("expected {want:?}, found {got:?}"),
            });
        }
        Ok(())
    }
}

fn fields_u64<const N: usize>(line_no: usize, line: &str) -> Result<[u64; N], ImportError> {
    let mut out = [0u64; N];
    let mut it = line.split_whitespace();
    for (i, slot) in out.iter_mut().enumerate() {
        let tok = it.next().ok_or_else(|| ImportError::Syntax {
            line: line_no,
            msg: format!("expected {N} integer fields, found {i}"),
        })?;
        *slot = tok.parse::<u64>().map_err(|_| ImportError::Syntax {
            line: line_no,
            msg: format!("bad integer {tok:?}"),
        })?;
    }
    Ok(out)
}

/// Parses `.msh` v4 ASCII text into vertices and tetrahedra.
pub(crate) fn parse(text: &str) -> Result<(Vec<Point3>, Vec<[u32; 4]>), ImportError> {
    let mut cur = Cursor::new(text);
    cur.expect("$MeshFormat", "$MeshFormat")?;
    let (hline, header) = cur.next_content().ok_or(ImportError::Truncated {
        section: "$MeshFormat",
    })?;
    let mut hf = header.split_whitespace();
    let version: f64 =
        hf.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ImportError::Syntax {
                line: hline,
                msg: "bad $MeshFormat header".to_string(),
            })?;
    if !(4.0..5.0).contains(&version) {
        return Err(ImportError::Syntax {
            line: hline,
            msg: format!("unsupported .msh version {version} (need 4.x)"),
        });
    }
    let file_type: u64 =
        hf.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ImportError::Syntax {
                line: hline,
                msg: "bad $MeshFormat header".to_string(),
            })?;
    if file_type != 0 {
        return Err(ImportError::Syntax {
            line: hline,
            msg: "binary .msh is not supported (file-type must be 0)".to_string(),
        });
    }
    cur.expect("$MeshFormat", "$EndMeshFormat")?;

    let mut vertices: Vec<Point3> = Vec::new();
    let mut tag_map: HashMap<u64, u32> = HashMap::new();
    let mut cells: Vec<[u32; 4]> = Vec::new();
    let mut saw_nodes = false;
    let mut saw_elements = false;

    while let Some((line, l)) = cur.next_content() {
        match l {
            "$Nodes" => {
                if saw_nodes {
                    return Err(ImportError::Syntax {
                        line,
                        msg: "duplicate $Nodes section".to_string(),
                    });
                }
                saw_nodes = true;
                parse_nodes(&mut cur, &mut vertices, &mut tag_map)?;
            }
            "$Elements" => {
                if saw_elements {
                    return Err(ImportError::Syntax {
                        line,
                        msg: "duplicate $Elements section".to_string(),
                    });
                }
                saw_elements = true;
                parse_elements(&mut cur, &tag_map, &mut cells)?;
            }
            other => {
                let Some(name) = other.strip_prefix('$') else {
                    return Err(ImportError::Syntax {
                        line,
                        msg: format!("expected a $-section header, found {other:?}"),
                    });
                };
                if name.starts_with("End") {
                    return Err(ImportError::Syntax {
                        line,
                        msg: format!("unexpected section terminator ${name}"),
                    });
                }
                // Skip unknown sections ($PhysicalNames, $Entities, ...).
                let end = format!("$End{name}");
                loop {
                    match cur.next_content() {
                        Some((_, l)) if l == end => break,
                        Some(_) => continue,
                        None => {
                            return Err(ImportError::Truncated {
                                section: "skipped section",
                            })
                        }
                    }
                }
            }
        }
    }
    if !saw_nodes || vertices.is_empty() {
        return Err(ImportError::EmptyMesh { what: "nodes" });
    }
    if !saw_elements || cells.is_empty() {
        return Err(ImportError::EmptyMesh { what: "cells" });
    }
    Ok((vertices, cells))
}

fn parse_nodes(
    cur: &mut Cursor<'_>,
    vertices: &mut Vec<Point3>,
    tag_map: &mut HashMap<u64, u32>,
) -> Result<(), ImportError> {
    const SEC: &str = "$Nodes";
    let input_len = cur.input_len;
    let (hline, header) = cur
        .next_content()
        .ok_or(ImportError::Truncated { section: SEC })?;
    let [num_blocks, num_nodes, _min_tag, _max_tag] = fields_u64::<4>(hline, header)?;
    let num_blocks = check_entity_count("declared node entity blocks", num_blocks, input_len)?;
    let declared = check_entity_count("declared node count", num_nodes, input_len)?;
    vertices.reserve(declared.min(1 << 16));
    for _ in 0..num_blocks {
        let (bline, bheader) = cur
            .next_content()
            .ok_or(ImportError::Truncated { section: SEC })?;
        let [_dim, _tag, parametric, in_block] = fields_u64::<4>(bline, bheader)?;
        if parametric != 0 {
            return Err(ImportError::Syntax {
                line: bline,
                msg: "parametric nodes are not supported".to_string(),
            });
        }
        let in_block = check_entity_count("declared block node count", in_block, input_len)?;
        let mut tags = Vec::with_capacity(in_block.min(1 << 16));
        for _ in 0..in_block {
            let (tline, tl) = cur
                .next_content()
                .ok_or(ImportError::Truncated { section: SEC })?;
            let [tag] = fields_u64::<1>(tline, tl)?;
            tags.push((tline, tag));
        }
        for (tline, tag) in tags {
            let (cline, cl) = cur
                .next_content()
                .ok_or(ImportError::Truncated { section: SEC })?;
            let mut coords = [0.0f64; 3];
            let mut it = cl.split_whitespace();
            for c in coords.iter_mut() {
                let tok = it.next().ok_or_else(|| ImportError::Syntax {
                    line: cline,
                    msg: "node needs 3 coordinates".to_string(),
                })?;
                *c = tok.parse::<f64>().map_err(|_| ImportError::Syntax {
                    line: cline,
                    msg: format!("bad coordinate {tok:?}"),
                })?;
                if !c.is_finite() {
                    return Err(ImportError::Syntax {
                        line: cline,
                        msg: format!("non-finite coordinate {tok:?}"),
                    });
                }
            }
            check_entity_count("node count", vertices.len() as u64 + 1, input_len)?;
            if tag_map.insert(tag, vertices.len() as u32).is_some() {
                return Err(ImportError::Syntax {
                    line: tline,
                    msg: format!("duplicate node tag {tag}"),
                });
            }
            vertices.push(Point3::new(coords[0], coords[1], coords[2]));
        }
    }
    if vertices.len() as u64 != declared as u64 {
        return Err(ImportError::CountMismatch {
            what: "nodes",
            declared: declared as u64,
            actual: vertices.len() as u64,
        });
    }
    cur.expect(SEC, "$EndNodes")
}

fn parse_elements(
    cur: &mut Cursor<'_>,
    tag_map: &HashMap<u64, u32>,
    cells: &mut Vec<[u32; 4]>,
) -> Result<(), ImportError> {
    const SEC: &str = "$Elements";
    let input_len = cur.input_len;
    let (hline, header) = cur
        .next_content()
        .ok_or(ImportError::Truncated { section: SEC })?;
    let [num_blocks, num_elements, _min_tag, _max_tag] = fields_u64::<4>(hline, header)?;
    let num_blocks = check_entity_count("declared element entity blocks", num_blocks, input_len)?;
    let declared = check_entity_count("declared element count", num_elements, input_len)?;
    let mut total = 0usize;
    for _ in 0..num_blocks {
        let (bline, bheader) = cur
            .next_content()
            .ok_or(ImportError::Truncated { section: SEC })?;
        let [dim, _tag, etype, in_block] = fields_u64::<4>(bline, bheader)?;
        let in_block = check_entity_count("declared block element count", in_block, input_len)?;
        let is_tet = dim == 3 && etype == 4;
        if dim == 3 && etype != 4 {
            return Err(ImportError::UnsupportedElement {
                line: bline,
                element_type: etype as u32,
            });
        }
        for _ in 0..in_block {
            let (eline, el) = cur
                .next_content()
                .ok_or(ImportError::Truncated { section: SEC })?;
            total += 1;
            if !is_tet {
                continue;
            }
            let mut it = el.split_whitespace();
            let _etag = it.next(); // element tag, unused
            let mut conn = [0u32; 4];
            for slot in conn.iter_mut() {
                let tok = it.next().ok_or_else(|| ImportError::Syntax {
                    line: eline,
                    msg: "tetrahedron needs 4 node tags".to_string(),
                })?;
                let tag: u64 = tok.parse().map_err(|_| ImportError::Syntax {
                    line: eline,
                    msg: format!("bad node tag {tok:?}"),
                })?;
                *slot = *tag_map.get(&tag).ok_or_else(|| ImportError::Syntax {
                    line: eline,
                    msg: format!("unknown node tag {tag}"),
                })?;
            }
            check_entity_count("cell count", cells.len() as u64 + 1, input_len)?;
            cells.push(conn);
        }
    }
    if total != declared {
        return Err(ImportError::CountMismatch {
            what: "elements",
            declared: declared as u64,
            actual: total as u64,
        });
    }
    cur.expect(SEC, "$EndElements")
}

/// Cheap `(nodes, elements)` upper bound from the `$Nodes` / `$Elements`
/// headers, without resolving tags or allocating entity storage.
pub(crate) fn peek(text: &str) -> Result<(usize, usize), ImportError> {
    let mut cur = Cursor::new(text);
    let mut nodes: Option<usize> = None;
    let mut elements: Option<usize> = None;
    while let Some((_, l)) = cur.next_content() {
        let want_nodes = l == "$Nodes";
        let want_elements = l == "$Elements";
        if !(want_nodes || want_elements) {
            continue;
        }
        let (hline, header) = cur.next_content().ok_or(ImportError::Truncated {
            section: if want_nodes { "$Nodes" } else { "$Elements" },
        })?;
        let [_, count, _, _] = fields_u64::<4>(hline, header)?;
        if want_nodes {
            nodes = Some(check_entity_count(
                "declared node count",
                count,
                text.len(),
            )?);
        } else {
            elements = Some(check_entity_count(
                "declared element count",
                count,
                text.len(),
            )?);
        }
    }
    match (nodes, elements) {
        (Some(n), Some(e)) => Ok((n, e)),
        (None, _) => Err(ImportError::EmptyMesh { what: "nodes" }),
        (_, None) => Err(ImportError::EmptyMesh { what: "cells" }),
    }
}

/// One unmatched (single-incidence) face awaiting hanging-node resolution.
struct Unmatched {
    key: [u32; 3],
    cell: u32,
    opp: u32,
    area_normal: Vec3,
    area: f64,
    centroid: Point3,
}

/// The four triangular faces of tet `(v0,v1,v2,v3)`, each with its opposite
/// vertex (same table as `TetMesh`).
const TET_FACES: [([usize; 3], usize); 4] = [
    ([1, 2, 3], 0),
    ([0, 2, 3], 1),
    ([0, 1, 3], 2),
    ([0, 1, 2], 3),
];

/// Derives face adjacency for an arbitrary (possibly non-conforming) tet
/// soup. See the module docs for the diagnostic and stitching semantics.
pub(crate) fn assemble_tets(
    vertices: &[Point3],
    cells: &[[u32; 4]],
    report: &mut ImportReport,
) -> Result<PolyMesh, ImportError> {
    let nv = vertices.len() as u32;
    for (ci, c) in cells.iter().enumerate() {
        for &v in c {
            if v >= nv {
                return Err(ImportError::Structure {
                    msg: format!("cell {ci} references out-of-range vertex {v}"),
                });
            }
        }
    }
    let scale = bbox_diag(vertices).max(1e-30);
    let vol_tol = 1e-12 * scale * scale * scale;
    let area_tol = 1e-12 * scale * scale;

    let mut centroids = Vec::with_capacity(cells.len());
    for (ci, c) in cells.iter().enumerate() {
        let [a, b, cc, d] = c.map(|v| vertices[v as usize]);
        let vol = tet_signed_volume(a, b, cc, d);
        if vol < 0.0 {
            report.inverted_cells.push(ci as u32);
        }
        if vol.abs() <= vol_tol {
            report.degenerate_cells.push(ci as u32);
        }
        centroids.push(tet_centroid(a, b, cc, d));
    }

    // Incidences of one face key: `(cell, opposite vertex)` pairs.
    type Incidences = Vec<(u32, u32)>;
    let mut by_key: HashMap<[u32; 3], Incidences> = HashMap::with_capacity(cells.len() * 2);
    for (ci, c) in cells.iter().enumerate() {
        for (fv, opp) in TET_FACES {
            let mut key = [c[fv[0]], c[fv[1]], c[fv[2]]];
            key.sort_unstable();
            by_key.entry(key).or_default().push((ci as u32, c[opp]));
        }
    }
    let mut groups: Vec<([u32; 3], Incidences)> = by_key.into_iter().collect();
    groups.sort_unstable_by_key(|(k, _)| *k);

    let face_geom = |key: [u32; 3]| {
        let [a, b, c] = key.map(|v| vertices[v as usize]);
        let an = triangle_area_normal(a, b, c);
        (an, 0.5 * an.norm(), triangle_centroid(a, b, c))
    };
    // Unit normal of face `key`, oriented away from the point `away`.
    // `None` when the face is degenerate.
    let oriented = |key: [u32; 3], an: Vec3, away: Point3| -> Option<Vec3> {
        let n = an.norm();
        if n <= area_tol {
            return None;
        }
        let mut unit = an / n;
        if unit.dot(away - vertices[key[0] as usize]) > 0.0 {
            unit = -unit;
        }
        Some(unit)
    };

    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    let mut unmatched: Vec<Unmatched> = Vec::new();
    let mut degenerate_faces: Vec<u32> = Vec::new();
    for (key, inc) in groups {
        let (an, area, centroid) = face_geom(key);
        match inc.as_slice() {
            [(ci, opp)] => unmatched.push(Unmatched {
                key,
                cell: *ci,
                opp: *opp,
                area_normal: an,
                area,
                centroid,
            }),
            [(ca, opp), (cb, _)] => match oriented(key, an, vertices[*opp as usize]) {
                Some(normal) => interior.push(InteriorFace {
                    a: CellId(*ca),
                    b: CellId(*cb),
                    normal,
                    area,
                }),
                None => degenerate_faces.push(*ca),
            },
            many => {
                report
                    .non_manifold
                    .push(many.iter().map(|(c, _)| *c).collect());
                for (c, opp) in many {
                    if let Some(normal) = oriented(key, an, vertices[*opp as usize]) {
                        boundary.push(BoundaryFace {
                            cell: CellId(*c),
                            normal,
                            area,
                        });
                    } else {
                        degenerate_faces.push(*c);
                    }
                }
            }
        }
    }

    // Hanging-node stitching over the unmatched faces. Each fine face is
    // matched to the containing coarse face with the smallest normalized
    // off-plane deviation (deterministic: candidates scanned in sorted key
    // order, strict improvement required to switch).
    let mut consumed = vec![false; unmatched.len()];
    let mut covered = vec![false; unmatched.len()];
    if unmatched.len() <= MAX_UNMATCHED_FOR_RESOLUTION {
        let mut hanging: Vec<u32> = Vec::new();
        for t in 0..unmatched.len() {
            if unmatched[t].area <= area_tol {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for big in 0..unmatched.len() {
                let (f, cf) = (&unmatched[t], &unmatched[big]);
                if t == big
                    || f.cell == cf.cell
                    || cf.area <= area_tol
                    || f.area >= cf.area * (1.0 - 1e-9)
                {
                    continue;
                }
                if let Some(score) = containment_score(vertices, cf, f) {
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((big, score));
                    }
                }
            }
            let Some((big, _)) = best else {
                continue;
            };
            // Stitch: the fine face becomes an interior face between the
            // coarse cell and the fine cell, with the fine geometry.
            let (f, cf) = (&unmatched[t], &unmatched[big]);
            let coarse_centroid = centroids[cf.cell as usize];
            let mut normal = f.area_normal / f.area_normal.norm();
            if normal.dot(f.centroid - coarse_centroid) < 0.0 {
                normal = -normal;
            }
            interior.push(InteriorFace {
                a: CellId(cf.cell),
                b: CellId(f.cell),
                normal,
                area: f.area,
            });
            consumed[t] = true;
            covered[big] = true;
            report.hanging_resolved += 1;
            for v in f.key {
                if !cf.key.contains(&v) {
                    hanging.push(v);
                }
            }
        }
        hanging.sort_unstable();
        hanging.dedup();
        report.hanging_vertices = hanging;
    } else {
        report.resolution_skipped = true;
    }

    for (i, f) in unmatched.iter().enumerate() {
        if consumed[i] || covered[i] {
            continue;
        }
        match oriented(f.key, f.area_normal, vertices[f.opp as usize]) {
            Some(normal) => boundary.push(BoundaryFace {
                cell: CellId(f.cell),
                normal,
                area: f.area,
            }),
            None => degenerate_faces.push(f.cell),
        }
    }

    report.degenerate_cells.extend(degenerate_faces);
    report.degenerate_cells.sort_unstable();
    report.degenerate_cells.dedup();

    PolyMesh::from_parts(3, centroids, interior, boundary)
        .map_err(|msg| ImportError::Structure { msg })
}

/// Containment test for hanging-node stitching: `Some(score)` when every
/// vertex of fine face `f`, projected onto coarse face `cf`'s plane, lies
/// inside `cf` (barycentric tolerance 0.05) with off-plane distance at most
/// `0.6·√area(cf)` — a deliberately generous slab so warped (non-planar)
/// refinements still stitch. The score is the worst off-plane distance
/// normalized by `√area(cf)` (smaller is a better fit).
fn containment_score(vertices: &[Point3], cf: &Unmatched, f: &Unmatched) -> Option<f64> {
    let [a, b, c] = cf.key.map(|v| vertices[v as usize]);
    let n = cf.area_normal;
    let nn = n.norm();
    if nn <= 1e-300 {
        return None;
    }
    let unit = n / nn;
    let span = cf.area.sqrt();
    let slab = 0.6 * span;
    let (e1, e2) = (b - a, c - a);
    let (d11, d12, d22) = (e1.dot(e1), e1.dot(e2), e2.dot(e2));
    let det = d11 * d22 - d12 * d12;
    if det.abs() <= 1e-300 {
        return None;
    }
    let mut worst = 0.0f64;
    for vp in f.key {
        let p = vertices[vp as usize];
        let off = (p - a).dot(unit);
        if off.abs() > slab {
            return None;
        }
        worst = worst.max(off.abs());
        let d = p - a - unit * off;
        let (r1, r2) = (d.dot(e1), d.dot(e2));
        let u = (d22 * r1 - d12 * r2) / det;
        let v = (d11 * r2 - d12 * r1) / det;
        if u < -0.05 || v < -0.05 || u + v > 1.05 {
            return None;
        }
    }
    Some(worst / span)
}

fn bbox_diag(vertices: &[Point3]) -> f64 {
    if vertices.is_empty() {
        return 0.0;
    }
    let mut lo = Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut hi = Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for v in vertices {
        lo = Point3::new(lo.x.min(v.x), lo.y.min(v.y), lo.z.min(v.z));
        hi = Point3::new(hi.x.max(v.x), hi.y.max(v.y), hi.z.max(v.z));
    }
    (hi - lo).norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::SweepMesh;
    use crate::import::{import_bytes, ImportFormat, Imported};

    /// Minimal valid wrapper: two tets sharing face (1,2,3), tags 1-based.
    fn two_tet_msh() -> String {
        msh_of(
            &[
                (1, [0.0, 0.0, 0.0]),
                (2, [1.0, 0.0, 0.0]),
                (3, [0.0, 1.0, 0.0]),
                (4, [0.3, 0.3, 1.0]),
                (5, [0.3, 0.3, -1.0]),
            ],
            &[[1, 2, 3, 4], [2, 1, 3, 5]],
        )
    }

    /// Renders a tag/coordinate list and tet list as one-block v4.1 ASCII.
    fn msh_of(nodes: &[(u64, [f64; 3])], tets: &[[u64; 4]]) -> String {
        let mut s = String::from("$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n");
        s.push_str(&format!("1 {} 1 {}\n", nodes.len(), nodes.len()));
        s.push_str(&format!("3 1 0 {}\n", nodes.len()));
        for (tag, _) in nodes {
            s.push_str(&format!("{tag}\n"));
        }
        for (_, [x, y, z]) in nodes {
            s.push_str(&format!("{x} {y} {z}\n"));
        }
        s.push_str("$EndNodes\n$Elements\n");
        s.push_str(&format!("1 {} 1 {}\n", tets.len(), tets.len()));
        s.push_str(&format!("3 1 4 {}\n", tets.len()));
        for (i, t) in tets.iter().enumerate() {
            s.push_str(&format!("{} {} {} {} {}\n", i + 1, t[0], t[1], t[2], t[3]));
        }
        s.push_str("$EndElements\n");
        s
    }

    fn import(text: &str) -> Imported {
        import_bytes(text.as_bytes(), ImportFormat::Msh).unwrap()
    }

    #[test]
    fn two_tets_round_trip() {
        let got = import(&two_tet_msh());
        assert_eq!(got.mesh.num_cells(), 2);
        assert_eq!(got.mesh.interior_faces().len(), 1);
        assert_eq!(got.mesh.boundary_faces().len(), 6);
        let f = got.mesh.interior_faces()[0];
        let dir = got.mesh.centroid(f.b) - got.mesh.centroid(f.a);
        assert!(f.normal.dot(dir) > 0.0);
        assert!(!got.report.has_errors());
    }

    #[test]
    fn sparse_tags_resolve() {
        let got = import(&msh_of(
            &[
                (10, [0.0, 0.0, 0.0]),
                (20, [1.0, 0.0, 0.0]),
                (30, [0.0, 1.0, 0.0]),
                (77, [0.3, 0.3, 1.0]),
            ],
            &[[10, 20, 30, 77]],
        ));
        assert_eq!(got.mesh.num_cells(), 1);
        assert_eq!(got.mesh.boundary_faces().len(), 4);
    }

    #[test]
    fn surface_elements_are_skipped_and_hexes_rejected() {
        // A triangle block (dim 2, type 2) alongside the tet block parses.
        let base = two_tet_msh();
        let with_tri = base.replace(
            "$Elements\n1 2 1 2\n",
            "$Elements\n2 3 1 3\n2 1 2 1\n9 1 2 3\n",
        );
        let got = import(&with_tri);
        assert_eq!(got.mesh.num_cells(), 2);
        // A hex block (dim 3, type 5) is a typed error.
        let with_hex = base.replace("3 1 4 2\n", "3 1 5 2\n");
        let err = import_bytes(with_hex.as_bytes(), ImportFormat::Msh).unwrap_err();
        assert!(matches!(
            err,
            ImportError::UnsupportedElement {
                element_type: 5,
                ..
            }
        ));
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let full = two_tet_msh();
        // Cut the file at every line boundary; all prefixes must fail with a
        // typed error (and never panic).
        let mut at = 0usize;
        while let Some(nl) = full[at..].find('\n') {
            at += nl + 1;
            if at >= full.len() {
                break;
            }
            let err = import_bytes(&full.as_bytes()[..at], ImportFormat::Msh).unwrap_err();
            assert!(
                matches!(
                    err,
                    ImportError::Truncated { .. }
                        | ImportError::Syntax { .. }
                        | ImportError::EmptyMesh { .. }
                        | ImportError::CountMismatch { .. }
                ),
                "prefix of {at} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn huge_declared_counts_rejected_cheaply() {
        for huge in ["18446744073709551615", "4294967296", "123456789123"] {
            let text = format!("$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n1 {huge} 1 {huge}\n");
            let err = import_bytes(text.as_bytes(), ImportFormat::Msh).unwrap_err();
            assert!(
                matches!(err, ImportError::TooLarge { .. }),
                "{huge}: {err:?}"
            );
        }
        // Larger than u64 entirely: a syntax error, not a wrapped panic.
        let text =
            "$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n1 99999999999999999999999999 1 1\n";
        assert!(matches!(
            import_bytes(text.as_bytes(), ImportFormat::Msh).unwrap_err(),
            ImportError::Syntax { .. }
        ));
    }

    #[test]
    fn count_mismatch_detected() {
        // Declare 6 nodes but provide 5.
        let text = two_tet_msh().replace("1 5 1 5\n3 1 0 5\n", "1 6 1 6\n3 1 0 5\n");
        let err = import_bytes(text.as_bytes(), ImportFormat::Msh).unwrap_err();
        assert!(
            matches!(err, ImportError::CountMismatch { what: "nodes", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn zero_node_and_unknown_tag_files() {
        let empty = "$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n0 0 0 0\n$EndNodes\n$Elements\n0 0 0 0\n$EndElements\n";
        assert!(matches!(
            import_bytes(empty.as_bytes(), ImportFormat::Msh).unwrap_err(),
            ImportError::EmptyMesh { what: "nodes" }
        ));
        let bad_tag = two_tet_msh().replace("2 2 1 3 5\n", "2 2 1 3 99\n");
        assert!(matches!(
            import_bytes(bad_tag.as_bytes(), ImportFormat::Msh).unwrap_err(),
            ImportError::Syntax { .. }
        ));
    }

    #[test]
    fn binary_and_v2_headers_rejected() {
        for header in ["2.2 0 8", "4.1 1 8"] {
            let text = format!("$MeshFormat\n{header}\n$EndMeshFormat\n");
            assert!(matches!(
                import_bytes(text.as_bytes(), ImportFormat::Msh).unwrap_err(),
                ImportError::Syntax { .. }
            ));
        }
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let text = two_tet_msh().replace(
            "$Nodes\n",
            "$PhysicalNames\n1\n3 1 \"domain\"\n$EndPhysicalNames\n$Nodes\n",
        );
        assert_eq!(import(&text).mesh.num_cells(), 2);
    }

    #[test]
    fn inverted_cell_reported_not_rejected() {
        // Swap two vertices of the second tet: negative signed volume.
        let text = two_tet_msh().replace("2 2 1 3 5\n", "2 1 2 3 5\n");
        let got = import(&text);
        assert_eq!(got.report.inverted_cells, vec![1]);
        assert!(!got.report.has_errors());
        // Geometry-derived orientation is unchanged: still one interior face.
        assert_eq!(got.mesh.interior_faces().len(), 1);
    }

    #[test]
    fn non_manifold_face_reported_without_dependence() {
        let got = import(&msh_of(
            &[
                (1, [0.0, 0.0, 0.0]),
                (2, [1.0, 0.0, 0.0]),
                (3, [0.0, 1.0, 0.0]),
                (4, [0.3, 0.3, 1.0]),
                (5, [0.3, 0.3, -1.0]),
                (6, [0.9, 0.9, 1.0]),
            ],
            &[[1, 2, 3, 4], [1, 2, 3, 5], [1, 2, 3, 6]],
        ));
        assert_eq!(got.report.non_manifold.len(), 1);
        assert!(got.report.has_errors());
        assert_eq!(got.mesh.interior_faces().len(), 0);
    }

    #[test]
    fn hanging_node_t_junction_is_stitched() {
        // Coarse tet under z=0 with top face (1,2,3); three fine tets above
        // sharing apex node 6 and hanging node 5 at the face centroid.
        let nodes = [
            (1, [0.0, 0.0, 0.0]),
            (2, [1.0, 0.0, 0.0]),
            (3, [0.0, 1.0, 0.0]),
            (4, [0.33, 0.33, -1.0]),  // coarse apex below
            (5, [0.333, 0.333, 0.0]), // hanging node on the coarse face
            (6, [0.33, 0.33, 0.8]),   // fine apex above
        ];
        let tets = [
            [1, 2, 3, 4], // coarse
            [1, 2, 5, 6],
            [2, 3, 5, 6],
            [3, 1, 5, 6],
        ];
        let got = import(&msh_of(&nodes, &tets));
        assert_eq!(got.report.hanging_resolved, 3);
        assert_eq!(got.report.hanging_vertices, vec![4]); // dense id of tag 5
        assert!(!got.report.has_errors());
        // 3 stitched + 3 fine-fine interior faces.
        assert_eq!(got.mesh.interior_faces().len(), 6);
        assert_eq!(got.mesh.connected_component_size(), 4);
        // Each stitched face runs coarse -> fine.
        let stitched: Vec<_> = got
            .mesh
            .interior_faces()
            .iter()
            .filter(|f| f.a == CellId(0))
            .collect();
        assert_eq!(stitched.len(), 3);
        for f in stitched {
            assert!(
                f.normal.z > 0.5,
                "stitched normal should point up: {:?}",
                f.normal
            );
        }
    }

    #[test]
    fn peek_counts_msh() {
        let (v, c) = peek(&two_tet_msh()).unwrap();
        assert_eq!((v, c), (5, 2));
        assert!(matches!(
            peek("$MeshFormat\n4.1 0 8\n$EndMeshFormat\n"),
            Err(ImportError::EmptyMesh { .. })
        ));
    }
}
