//! Wavefront `.obj` triangle-surface parser and assembler.
//!
//! Accepted subset (see `MESHES.md`): `v` records with ≥3 coordinates, `f`
//! records with ≥3 vertices in any of the `i`, `i/t`, `i//n`, `i/t/n` forms
//! (1-based or negative relative indices), whole-line `#` comments. Polygons
//! are fan-triangulated; `vn`/`vt`/grouping/material records are ignored;
//! unknown keywords are ignored (the format is extensible). Each resulting
//! triangle is one cell; dependence flows across shared edges, giving the
//! "2-D style" instances of [`crate::TriMesh2d`] but over arbitrary, possibly
//! non-flat surfaces.

use std::collections::HashMap;

use super::{check_entity_count, ImportError, ImportReport, MAX_UNMATCHED_FOR_RESOLUTION};
use crate::face::{BoundaryFace, CellId, InteriorFace};
use crate::geometry::{triangle_area_normal, triangle_centroid, Point3};
use crate::poly::PolyMesh;

/// Parses `.obj` text into vertices and fan-triangulated faces.
pub(crate) fn parse(text: &str) -> Result<(Vec<Point3>, Vec<[u32; 3]>), ImportError> {
    let mut vertices: Vec<Point3> = Vec::new();
    let mut tris: Vec<[u32; 3]> = Vec::new();
    for (li, raw) in text.lines().enumerate() {
        let line = li + 1;
        let mut fields = raw.split_whitespace();
        let Some(keyword) = fields.next() else {
            continue;
        };
        match keyword {
            "#" => {}
            k if k.starts_with('#') => {}
            "v" => {
                let mut coords = [0.0f64; 3];
                for (i, c) in coords.iter_mut().enumerate() {
                    let tok = fields.next().ok_or_else(|| ImportError::Syntax {
                        line,
                        msg: format!("vertex record has {i} coordinates, need 3"),
                    })?;
                    *c = tok.parse::<f64>().map_err(|_| ImportError::Syntax {
                        line,
                        msg: format!("bad vertex coordinate {tok:?}"),
                    })?;
                    if !c.is_finite() {
                        return Err(ImportError::Syntax {
                            line,
                            msg: format!("non-finite vertex coordinate {tok:?}"),
                        });
                    }
                }
                check_entity_count("vertex count", vertices.len() as u64 + 1, text.len())?;
                vertices.push(Point3::new(coords[0], coords[1], coords[2]));
            }
            "f" => {
                let mut idx: Vec<u32> = Vec::new();
                for tok in fields {
                    idx.push(face_index(tok, vertices.len(), line)?);
                }
                if idx.len() < 3 {
                    return Err(ImportError::Syntax {
                        line,
                        msg: format!("face record has {} vertices, need at least 3", idx.len()),
                    });
                }
                for w in 1..idx.len() - 1 {
                    check_entity_count("cell count", tris.len() as u64 + 1, text.len())?;
                    tris.push([idx[0], idx[w], idx[w + 1]]);
                }
            }
            // Normals, texture coords, grouping, materials, lines, points:
            // legal .obj records that carry no cell connectivity.
            _ => {}
        }
    }
    if vertices.is_empty() {
        return Err(ImportError::EmptyMesh { what: "nodes" });
    }
    if tris.is_empty() {
        return Err(ImportError::EmptyMesh { what: "cells" });
    }
    Ok((vertices, tris))
}

/// Resolves one `f`-record token (`i`, `i/t`, `i//n`, `i/t/n`) to a 0-based
/// vertex index against the `n_verts` vertices seen so far.
fn face_index(tok: &str, n_verts: usize, line: usize) -> Result<u32, ImportError> {
    let first = tok.split('/').next().unwrap_or("");
    let raw: i64 = first.parse().map_err(|_| ImportError::Syntax {
        line,
        msg: format!("bad face index {tok:?}"),
    })?;
    let resolved = if raw > 0 {
        raw - 1
    } else if raw < 0 {
        n_verts as i64 + raw
    } else {
        return Err(ImportError::Syntax {
            line,
            msg: "face index 0 is invalid (.obj indices are 1-based)".to_string(),
        });
    };
    if resolved < 0 || resolved >= n_verts as i64 {
        return Err(ImportError::Syntax {
            line,
            msg: format!("face index {raw} out of range (have {n_verts} vertices)"),
        });
    }
    Ok(resolved as u32)
}

/// Cheap `(vertices, cells)` upper bound: one pass counting `v`/`f` records.
pub(crate) fn peek(text: &str) -> Result<(usize, usize), ImportError> {
    let mut verts = 0u64;
    let mut cells = 0u64;
    for raw in text.lines() {
        let mut fields = raw.split_whitespace();
        match fields.next() {
            Some("v") => verts += 1,
            Some("f") => {
                let corners = fields.count() as u64;
                cells += corners.saturating_sub(2).max(1);
            }
            _ => {}
        }
    }
    let v = check_entity_count("vertex count", verts, text.len())?;
    let c = check_entity_count("cell count", cells, text.len())?;
    Ok((v, c))
}

/// Derives edge adjacency for a triangle soup: shared edges become interior
/// faces with in-surface unit normals (oriented first-cell → second-cell),
/// unshared edges become boundary faces, and edges shared by more than two
/// triangles are recorded as non-manifold (no dependence edges). T-junction
/// hanging vertices are detected and reported but not stitched.
pub(crate) fn assemble_surface(
    vertices: &[Point3],
    tris: &[[u32; 3]],
    report: &mut ImportReport,
) -> Result<PolyMesh, ImportError> {
    let scale = bbox_diag(vertices).max(1e-30);
    let mut centroids = Vec::with_capacity(tris.len());
    let mut plane_normals = Vec::with_capacity(tris.len());
    for (ci, t) in tris.iter().enumerate() {
        let [a, b, c] = t.map(|v| vertices[v as usize]);
        centroids.push(triangle_centroid(a, b, c));
        let an = triangle_area_normal(a, b, c);
        if an.norm() <= 1e-12 * scale * scale {
            report.degenerate_cells.push(ci as u32);
        }
        plane_normals.push(an);
    }

    // Group directed edges by their undirected key.
    let mut by_key: HashMap<(u32, u32), Vec<u32>> = HashMap::with_capacity(tris.len() * 2);
    for (ci, t) in tris.iter().enumerate() {
        for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            let key = (e.0.min(e.1), e.0.max(e.1));
            by_key.entry(key).or_default().push(ci as u32);
        }
    }
    let mut groups: Vec<((u32, u32), Vec<u32>)> = by_key.into_iter().collect();
    groups.sort_unstable_by_key(|(k, _)| *k);

    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    let mut unmatched: Vec<((u32, u32), u32)> = Vec::new();
    for (key, cells) in groups {
        match cells.as_slice() {
            [c] => unmatched.push((key, *c)),
            [ca, cb] => {
                if let Some((normal, len)) = edge_normal(
                    vertices,
                    key,
                    plane_normals[*ca as usize],
                    centroids[*ca as usize],
                ) {
                    interior.push(InteriorFace {
                        a: CellId(*ca),
                        b: CellId(*cb),
                        normal,
                        area: len,
                    });
                }
            }
            many => {
                report.non_manifold.push(many.to_vec());
                for &c in many {
                    if let Some((normal, len)) = edge_normal(
                        vertices,
                        key,
                        plane_normals[c as usize],
                        centroids[c as usize],
                    ) {
                        boundary.push(BoundaryFace {
                            cell: CellId(c),
                            normal,
                            area: len,
                        });
                    }
                }
            }
        }
    }

    // Hanging-vertex detection: an unmatched edge endpoint lying strictly
    // inside another unmatched edge is a T-junction node.
    if unmatched.len() <= MAX_UNMATCHED_FOR_RESOLUTION {
        let mut hanging: Vec<u32> = Vec::new();
        for &((a, b), _) in &unmatched {
            let (pa, pb) = (vertices[a as usize], vertices[b as usize]);
            let len = pa.distance(pb);
            if len <= 1e-12 * scale {
                continue;
            }
            for &((u, v), _) in &unmatched {
                for w in [u, v] {
                    if w == a || w == b {
                        continue;
                    }
                    let p = vertices[w as usize];
                    let t = (p - pa).dot(pb - pa) / (len * len);
                    if !(0.01..=0.99).contains(&t) {
                        continue;
                    }
                    let off = (p - (pa + (pb - pa) * t)).norm();
                    if off <= 0.05 * len {
                        hanging.push(w);
                    }
                }
            }
        }
        hanging.sort_unstable();
        hanging.dedup();
        report.hanging_vertices = hanging;
    } else {
        report.resolution_skipped = true;
    }

    for (key, c) in unmatched {
        if let Some((normal, len)) = edge_normal(
            vertices,
            key,
            plane_normals[c as usize],
            centroids[c as usize],
        ) {
            boundary.push(BoundaryFace {
                cell: CellId(c),
                normal,
                area: len,
            });
        }
    }

    let mesh = PolyMesh::from_parts(2, centroids, interior, boundary)
        .map_err(|msg| ImportError::Structure { msg })?;
    mesh.with_surface(vertices.to_vec(), tris.to_vec())
        .map_err(|msg| ImportError::Structure { msg })
}

/// In-surface unit normal of edge `key` for the cell with the given plane
/// normal and centroid: perpendicular to the edge, tangent to the cell's
/// plane, pointing away from the cell centroid. `None` when the edge or the
/// cell is degenerate. Second component is the edge length ("area" in the
/// 2-D sense).
fn edge_normal(
    vertices: &[Point3],
    key: (u32, u32),
    plane_normal: crate::Vec3,
    centroid: Point3,
) -> Option<(crate::Vec3, f64)> {
    let (pa, pb) = (vertices[key.0 as usize], vertices[key.1 as usize]);
    let edge = pb - pa;
    let len = edge.norm();
    let mut m = edge.cross(plane_normal);
    let mn = m.norm();
    if len <= 1e-300 || mn <= 1e-300 {
        return None;
    }
    m = m / mn;
    let mid = (pa + pb) / 2.0;
    if m.dot(mid - centroid) < 0.0 {
        m = -m;
    }
    Some((m, len))
}

fn bbox_diag(vertices: &[Point3]) -> f64 {
    let mut lo = Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut hi = Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for v in vertices {
        lo = Point3::new(lo.x.min(v.x), lo.y.min(v.y), lo.z.min(v.z));
        hi = Point3::new(hi.x.max(v.x), hi.y.max(v.y), hi.z.max(v.z));
    }
    if vertices.is_empty() {
        return 0.0;
    }
    (hi - lo).norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::SweepMesh;
    use crate::import::{import_bytes, ImportFormat};

    fn import(text: &str) -> crate::import::Imported {
        import_bytes(text.as_bytes(), ImportFormat::Obj).unwrap()
    }

    #[test]
    fn two_triangles_share_one_edge() {
        let got = import("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3\nf 2 4 3\n");
        assert_eq!(got.mesh.num_cells(), 2);
        assert_eq!(got.mesh.interior_faces().len(), 1);
        assert_eq!(got.mesh.boundary_faces().len(), 4);
        let f = got.mesh.interior_faces()[0];
        let dir = got.mesh.centroid(f.b) - got.mesh.centroid(f.a);
        assert!(f.normal.dot(dir) > 0.0, "interior normal not oriented a->b");
    }

    #[test]
    fn quad_faces_fan_triangulate() {
        let got = import("v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n");
        assert_eq!(got.mesh.num_cells(), 2);
        assert_eq!(got.mesh.interior_faces().len(), 1);
    }

    #[test]
    fn slash_forms_and_negative_indices() {
        let got = import("v 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nvt 0 0\nf 1/1/1 2//1 -1\n");
        assert_eq!(got.mesh.num_cells(), 1);
    }

    #[test]
    fn syntax_errors_are_typed() {
        for bad in [
            "v 0 0\nf 1 2 3\n",                     // short vertex
            "v a b c\n",                            // non-numeric coordinate
            "v 0 0 inf\nf 1 1 1\n",                 // non-finite coordinate
            "v 0 0 0\nf 1 2 3\n",                   // out-of-range index
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n", // index 0
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2\n",   // short face
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nf x y z\n", // non-numeric index
        ] {
            let err = import_bytes(bad.as_bytes(), ImportFormat::Obj).unwrap_err();
            assert!(
                matches!(err, ImportError::Syntax { .. }),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn empty_inputs_are_typed() {
        assert!(matches!(
            import_bytes(b"# nothing\n", ImportFormat::Obj).unwrap_err(),
            ImportError::EmptyMesh { what: "nodes" }
        ));
        assert!(matches!(
            import_bytes(b"v 0 0 0\n", ImportFormat::Obj).unwrap_err(),
            ImportError::EmptyMesh { what: "cells" }
        ));
    }

    #[test]
    fn non_manifold_edge_reported_without_dependence() {
        // Three triangles sharing edge (1,2).
        let got =
            import("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 0 -1 0\nv 0 0 1\nf 1 2 3\nf 1 2 4\nf 1 2 5\n");
        assert_eq!(got.report.non_manifold.len(), 1);
        assert_eq!(got.report.non_manifold[0].len(), 3);
        assert_eq!(got.mesh.interior_faces().len(), 0);
        assert!(got.report.has_errors());
    }

    #[test]
    fn degenerate_triangle_reported() {
        let got = import("v 0 0 0\nv 1 0 0\nv 2 0 0\nv 0 1 0\nf 1 2 3\nf 1 2 4\n");
        assert_eq!(got.report.degenerate_cells, vec![0]);
        assert!(got.report.has_errors());
    }

    #[test]
    fn t_junction_hanging_vertex_detected() {
        // Coarse triangle (0,0)-(2,0)-(1,2) above, two fine triangles below
        // splitting the base edge at (1,0): vertex 4 hangs on edge 1-2.
        let got = import(
            "v 0 0 0\nv 2 0 0\nv 1 2 0\nv 1 0 0\nv 0 -1 0\nv 2 -1 0\nf 1 2 3\nf 1 4 5\nf 4 2 6\n",
        );
        assert_eq!(got.report.hanging_vertices, vec![3]); // 0-based vertex id
        assert!(!got.report.has_errors()); // hanging nodes are a warning
    }

    #[test]
    fn peek_counts_obj() {
        let (v, c) = peek("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n").unwrap();
        assert_eq!((v, c), (4, 2));
    }
}
