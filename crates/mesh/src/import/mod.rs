//! External mesh ingestion: Wavefront `.obj` surfaces and Gmsh `.msh` v4
//! ASCII tetrahedral meshes.
//!
//! Both parsers are defensive wire-format readers: every failure mode —
//! truncation, non-UTF8 bytes, absurd declared counts, unsupported element
//! types, broken connectivity — is a typed [`ImportError`], never a panic.
//! The accepted grammar subset, limits, and error taxonomy are documented in
//! `MESHES.md` at the repository root.
//!
//! Imports produce a [`PolyMesh`] (face adjacency,
//! oriented unit normals, and boundary faces derived from the raw
//! connectivity) plus an [`ImportReport`] of validation diagnostics:
//! non-manifold faces, inverted cells, degenerate cells, and hanging nodes.
//! Volumetric `.msh` imports *stitch* hanging-node T-junctions — an
//! unmatched fine face geometrically contained in an unmatched coarse face
//! becomes an interior face — which is exactly the mesh family where induced
//! sweep digraphs stop being acyclic (see `MESHES.md` for the sweepability
//! condition and citation).
//!
//! ```
//! use sweep_mesh::import::{import_bytes, peek_counts, ImportFormat};
//! use sweep_mesh::SweepMesh;
//!
//! let obj = b"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n";
//! let (verts, cells) = peek_counts(obj, ImportFormat::Auto).unwrap();
//! assert_eq!((verts, cells), (3, 1));
//! let imported = import_bytes(obj, ImportFormat::Auto).unwrap();
//! assert_eq!(imported.mesh.num_cells(), 1);
//! assert_eq!(imported.report.boundary_faces, 3);
//! ```

pub mod msh;
pub mod obj;

use crate::poly::PolyMesh;

/// Hard upper bound on accepted input size (bytes). The server additionally
/// applies its own (smaller) configurable bound before parsing.
pub const MAX_IMPORT_BYTES: usize = 16 << 20;

/// Hard upper bound on vertices or cells, declared or actual.
pub const MAX_ENTITIES: usize = 1 << 22;

/// Hanging-node resolution compares unmatched faces pairwise; above this many
/// unmatched faces the quadratic scan is skipped (recorded in
/// [`ImportReport::resolution_skipped`]).
pub const MAX_UNMATCHED_FOR_RESOLUTION: usize = 2048;

/// Wire format selector for [`import_bytes`] / [`peek_counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImportFormat {
    /// Sniff the format from the content: a leading `$MeshFormat` section
    /// means Gmsh, otherwise `v `/`f ` records mean Wavefront.
    Auto,
    /// Wavefront `.obj` triangle surface.
    Obj,
    /// Gmsh `.msh` version 4 ASCII, 4-node tetrahedra.
    Msh,
}

impl ImportFormat {
    /// Parses `"auto" | "obj" | "msh"`.
    pub fn from_name(name: &str) -> Option<ImportFormat> {
        match name {
            "auto" => Some(ImportFormat::Auto),
            "obj" => Some(ImportFormat::Obj),
            "msh" => Some(ImportFormat::Msh),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ImportFormat::Auto => "auto",
            ImportFormat::Obj => "obj",
            ImportFormat::Msh => "msh",
        }
    }
}

impl std::fmt::Display for ImportFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed failure of a mesh import. Every variant is a malformed-input
/// condition; none of them abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The input is not valid UTF-8 (both accepted formats are text).
    NotUtf8 {
        /// Byte offset of the first invalid sequence.
        offset: usize,
    },
    /// `ImportFormat::Auto` could not sniff the format.
    UnknownFormat,
    /// The input, or a declared entity count, exceeds a hard limit.
    TooLarge {
        /// What exceeded the limit.
        what: &'static str,
        /// Observed value.
        count: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// The input ended inside a section that must be closed.
    Truncated {
        /// The unterminated section (e.g. `"$Nodes"`).
        section: &'static str,
    },
    /// A line failed to parse.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A declared count disagrees with the entities actually present.
    CountMismatch {
        /// Which count.
        what: &'static str,
        /// Declared in the header.
        declared: u64,
        /// Actually present.
        actual: u64,
    },
    /// A 3-D element block of a type other than 4-node tetrahedra.
    UnsupportedElement {
        /// 1-based line number of the block header.
        line: usize,
        /// Gmsh element type code.
        element_type: u32,
    },
    /// The file parsed but contains no usable mesh.
    EmptyMesh {
        /// What was missing (`"nodes"` or `"cells"`).
        what: &'static str,
    },
    /// Parsed entities do not assemble into a valid mesh.
    Structure {
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::NotUtf8 { offset } => {
                write!(
                    f,
                    "input is not UTF-8 (first invalid byte at offset {offset})"
                )
            }
            ImportError::UnknownFormat => {
                write!(f, "could not detect mesh format (expected Gmsh $MeshFormat or Wavefront v/f records)")
            }
            ImportError::TooLarge { what, count, limit } => {
                write!(f, "{what} is {count}, exceeding the limit of {limit}")
            }
            ImportError::Truncated { section } => {
                write!(f, "input ends inside unterminated {section} section")
            }
            ImportError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ImportError::CountMismatch {
                what,
                declared,
                actual,
            } => write!(f, "declared {declared} {what} but found {actual}"),
            ImportError::UnsupportedElement { line, element_type } => {
                write!(
                    f,
                    "line {line}: unsupported 3-D element type {element_type} (only 4-node tetrahedra are accepted)"
                )
            }
            ImportError::EmptyMesh { what } => write!(f, "mesh contains no {what}"),
            ImportError::Structure { msg } => write!(f, "invalid mesh structure: {msg}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Validation diagnostics gathered while assembling an imported mesh.
///
/// Consumed by `sweep_analyze::analyze_import`, which maps these onto the
/// SW030–SW033 diagnostic rows.
#[derive(Debug, Clone, Default)]
pub struct ImportReport {
    /// The resolved concrete format (`Obj` or `Msh`, never `Auto`).
    pub format: Option<ImportFormat>,
    /// Vertices read from the file.
    pub vertices: usize,
    /// Cells in the assembled mesh.
    pub cells: usize,
    /// Interior (two-cell) faces derived.
    pub interior_faces: usize,
    /// Boundary (one-cell) faces derived.
    pub boundary_faces: usize,
    /// Faces shared by more than two cells: the incident cell lists. Such
    /// faces induce **no** dependence edges; each incidence becomes a
    /// boundary face.
    pub non_manifold: Vec<Vec<u32>>,
    /// Cells whose vertex ordering gives negative signed volume. Harmless —
    /// orientation is re-derived geometrically — but worth surfacing.
    pub inverted_cells: Vec<u32>,
    /// Cells with (numerically) zero volume/area; their degenerate faces
    /// cannot be oriented and are dropped from the adjacency.
    pub degenerate_cells: Vec<u32>,
    /// Interior faces created by stitching hanging-node T-junctions
    /// (`.msh` only).
    pub hanging_resolved: usize,
    /// Vertices identified as hanging nodes (on a neighbour's face/edge
    /// without being one of its vertices).
    pub hanging_vertices: Vec<u32>,
    /// True when the quadratic hanging-node scan was skipped because more
    /// than [`MAX_UNMATCHED_FOR_RESOLUTION`] faces were unmatched.
    pub resolution_skipped: bool,
}

impl ImportReport {
    /// True when the report contains error-severity findings (non-manifold
    /// faces or degenerate cells). Warnings (inverted orientation, hanging
    /// nodes) do not count.
    pub fn has_errors(&self) -> bool {
        !self.non_manifold.is_empty() || !self.degenerate_cells.is_empty()
    }
}

/// A successfully imported mesh plus its validation report.
#[derive(Debug, Clone)]
pub struct Imported {
    /// The assembled face-level mesh, ready for DAG induction.
    pub mesh: PolyMesh,
    /// Validation diagnostics gathered during assembly.
    pub report: ImportReport,
}

/// Sniffs the concrete format of `text`. `None` when neither format matches.
pub fn detect(text: &str) -> Option<ImportFormat> {
    let trimmed = text.trim_start_matches('\u{feff}').trim_start();
    if trimmed.starts_with("$MeshFormat") {
        return Some(ImportFormat::Msh);
    }
    for line in trimmed.lines().take(256) {
        let line = line.trim_start();
        if line.starts_with("v ") || line.starts_with("f ") || line.starts_with("v\t") {
            return Some(ImportFormat::Obj);
        }
    }
    None
}

fn resolve_format(text: &str, format: ImportFormat) -> Result<ImportFormat, ImportError> {
    match format {
        ImportFormat::Auto => detect(text).ok_or(ImportError::UnknownFormat),
        concrete => Ok(concrete),
    }
}

fn to_text(bytes: &[u8]) -> Result<&str, ImportError> {
    if bytes.len() > MAX_IMPORT_BYTES {
        return Err(ImportError::TooLarge {
            what: "input size in bytes",
            count: bytes.len() as u64,
            limit: MAX_IMPORT_BYTES as u64,
        });
    }
    let text = std::str::from_utf8(bytes).map_err(|e| ImportError::NotUtf8 {
        offset: e.valid_up_to(),
    })?;
    Ok(text.trim_start_matches('\u{feff}'))
}

/// Parses and assembles a mesh from raw bytes.
///
/// ```
/// use sweep_mesh::import::{import_bytes, ImportError, ImportFormat};
///
/// // Malformed input is a typed error, never a panic.
/// let err = import_bytes(b"\xff\xfe", ImportFormat::Auto).unwrap_err();
/// assert_eq!(err, ImportError::NotUtf8 { offset: 0 });
/// ```
pub fn import_bytes(bytes: &[u8], format: ImportFormat) -> Result<Imported, ImportError> {
    let text = to_text(bytes)?;
    let fmt = resolve_format(text, format)?;
    let mut report = ImportReport {
        format: Some(fmt),
        ..ImportReport::default()
    };
    let mesh = match fmt {
        ImportFormat::Obj => {
            let (vertices, tris) = obj::parse(text)?;
            report.vertices = vertices.len();
            obj::assemble_surface(&vertices, &tris, &mut report)?
        }
        ImportFormat::Msh => {
            let (vertices, cells) = msh::parse(text)?;
            report.vertices = vertices.len();
            msh::assemble_tets(&vertices, &cells, &mut report)?
        }
        ImportFormat::Auto => unreachable!("resolve_format returns a concrete format"),
    };
    use crate::face::SweepMesh as _;
    report.cells = mesh.num_cells();
    report.interior_faces = mesh.interior_faces().len();
    report.boundary_faces = mesh.boundary_faces().len();
    Ok(Imported { mesh, report })
}

/// Cheap admission pre-check: upper bounds on `(vertices, cells)` read from
/// headers/records without assembling anything, in one pass over the input.
///
/// Mirrors `sweep_dag::peek_counts` for instance uploads: the server calls
/// this before committing to a full parse so absurd declared counts are
/// rejected in O(bytes) time with no large allocations.
pub fn peek_counts(bytes: &[u8], format: ImportFormat) -> Result<(usize, usize), ImportError> {
    let text = to_text(bytes)?;
    let fmt = resolve_format(text, format)?;
    match fmt {
        ImportFormat::Obj => obj::peek(text),
        ImportFormat::Msh => msh::peek(text),
        ImportFormat::Auto => unreachable!("resolve_format returns a concrete format"),
    }
}

/// Guards a declared or observed entity count against [`MAX_ENTITIES`] and
/// against the physical ceiling implied by the input size (every entity needs
/// at least two bytes of text).
pub(crate) fn check_entity_count(
    what: &'static str,
    count: u64,
    input_bytes: usize,
) -> Result<usize, ImportError> {
    let phys = (input_bytes as u64) / 2 + 1;
    let limit = (MAX_ENTITIES as u64).min(phys);
    if count > limit {
        return Err(ImportError::TooLarge { what, count, limit });
    }
    Ok(count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_formats() {
        assert_eq!(detect("$MeshFormat\n4.1 0 8\n"), Some(ImportFormat::Msh));
        assert_eq!(detect("# comment\nv 0 0 0\n"), Some(ImportFormat::Obj));
        assert_eq!(detect("\u{feff}$MeshFormat\n"), Some(ImportFormat::Msh));
        assert_eq!(detect("hello world\n"), None);
        assert_eq!(
            import_bytes(b"hello world\n", ImportFormat::Auto).unwrap_err(),
            ImportError::UnknownFormat
        );
    }

    #[test]
    fn rejects_oversized_input() {
        // Fabricate an over-limit length without allocating 16 MiB: the
        // length check precedes everything else.
        let big = vec![b'v'; MAX_IMPORT_BYTES + 1];
        assert!(matches!(
            import_bytes(&big, ImportFormat::Obj),
            Err(ImportError::TooLarge { .. })
        ));
    }

    #[test]
    fn entity_count_guard() {
        assert!(check_entity_count("nodes", 10, 1000).is_ok());
        assert!(matches!(
            check_entity_count("nodes", u64::MAX, 1000),
            Err(ImportError::TooLarge { .. })
        ));
        assert!(matches!(
            check_entity_count("nodes", 5000, 100),
            Err(ImportError::TooLarge { .. })
        ));
    }

    #[test]
    fn format_names_round_trip() {
        for f in [ImportFormat::Auto, ImportFormat::Obj, ImportFormat::Msh] {
            assert_eq!(ImportFormat::from_name(f.name()), Some(f));
            assert_eq!(f.to_string(), f.name());
        }
        assert_eq!(ImportFormat::from_name("stl"), None);
    }

    #[test]
    fn error_display_is_informative() {
        let cases: Vec<(ImportError, &str)> = vec![
            (ImportError::NotUtf8 { offset: 3 }, "offset 3"),
            (ImportError::UnknownFormat, "detect"),
            (
                ImportError::TooLarge {
                    what: "x",
                    count: 9,
                    limit: 1,
                },
                "exceeding",
            ),
            (ImportError::Truncated { section: "$Nodes" }, "$Nodes"),
            (
                ImportError::Syntax {
                    line: 7,
                    msg: "bad".into(),
                },
                "line 7",
            ),
            (
                ImportError::CountMismatch {
                    what: "nodes",
                    declared: 5,
                    actual: 3,
                },
                "declared 5",
            ),
            (
                ImportError::UnsupportedElement {
                    line: 2,
                    element_type: 5,
                },
                "element type 5",
            ),
            (ImportError::EmptyMesh { what: "nodes" }, "no nodes"),
            (ImportError::Structure { msg: "oops".into() }, "oops"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
