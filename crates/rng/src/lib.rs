//! # sweep-rng — self-contained deterministic PRNG
//!
//! A dependency-free stand-in for the subset of the `rand` crate API this
//! workspace uses, so the whole repository builds offline. The workspace
//! aliases this crate as `rand` (see the root `Cargo.toml`), which keeps
//! every call site (`rng.random_range(..)`, `slice.shuffle(&mut rng)`,
//! `StdRng::seed_from_u64(..)`) unchanged.
//!
//! The generator is **xoshiro256++** seeded through **SplitMix64** — the
//! standard construction recommended by Blackman & Vigna. It is fast,
//! passes BigCrush, and (crucially for this repo) is *stable*: a given
//! seed yields the same stream on every platform and in every future
//! build, so experiment seeds stay reproducible.
//!
//! Not cryptographically secure; this workspace only needs statistical
//! quality for randomized scheduling experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only seeding mode this workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that a uniform sample can be drawn from.
///
/// Implemented for `Range<T>`/`RangeInclusive<T>` over the integer and
/// float types the workspace samples.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widens an integer sample request to `u64` arithmetic.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is a sample.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "cannot sample from empty or non-finite float range"
        );
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "cannot sample from empty or non-finite float range"
        );
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// Uniform draw from `[0, span)` by multiply-shift (Lemire); `span = 0`
/// means the full 64-bit range.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Multiply-high maps a 64-bit word to [0, span) with bias < 2^-64·span,
    // negligible for the spans this workspace draws (≤ ~10^9).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Derives an independent child seed from a master seed and a stream
/// index.
///
/// This is the workspace's seed-splitting scheme: child `i` of master
/// `m` is `splitmix64(m ⊕ golden·(i+1))` — a pure function of
/// `(m, i)`, so a batch of children can be computed in any order (or
/// on any thread) and still match the sequential enumeration exactly.
/// `sweep-core::best_of_trials` relies on this for bit-identical
/// parallel/sequential results. The `i+1` offset keeps stream 0 from
/// collapsing to the master seed itself.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    // One SplitMix64 step over the decorrelated input — the same
    // finalizer `StdRng::seed_from_u64` uses for state expansion.
    let x = master ^ stream.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic across platforms and versions.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion — guarantees a non-zero state even for
            // seed 0 and decorrelates consecutive seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice algorithms (mirrors `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random rearrangement and selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = r.random_range(0..17u32);
            assert!(x < 17);
            let y: usize = r.random_range(3..=9usize);
            assert!((3..=9).contains(&y));
            let f: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = r.random_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn uniformity_is_reasonable() {
        // 80k draws over 8 buckets: each bucket within ±5% of 10k.
        let mut r = StdRng::seed_from_u64(2005);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as i64 - 10_000).abs() < 500, "bucket {i}: {c}");
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let f: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        a.shuffle(&mut r1);
        b.shuffle(&mut r2);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            a, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn choose_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn random_bool_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((heads as i64 - 2500).abs() < 300, "heads = {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _: u32 = r.random_range(5..5u32);
    }

    #[test]
    fn split_seed_is_pure_and_decorrelated() {
        use super::split_seed;
        // Pure function of (master, stream): order of evaluation is
        // irrelevant — the property the parallel trial runner needs.
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
        // No collisions across a realistic trial batch, and no stream
        // reproducing its master.
        let mut seen: Vec<u64> = (0..4096).map(|i| split_seed(2005, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4096);
        assert!((0..64).all(|i| split_seed(2005, i) != 2005));
        // Children of different masters diverge too.
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // Golden values pin the scheme so a refactor cannot silently
        // change every downstream experiment.
        assert_eq!(split_seed(0, 0), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(split_seed(2005, 1), 0x2f8f_8019_ae7c_4018);
    }
}
