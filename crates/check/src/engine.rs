//! The model-check scheduler: serializes instrumented threads and
//! decides, at every synchronization operation, which thread runs next.
//!
//! Mechanics (CHESS-style, on real OS threads):
//!
//! * Every instrumented op is a **yield point**: the thread posts its
//!   pending [`Op`] to the shared [`Session`], wakes the scheduler
//!   logic, and blocks until the op is *granted*. At most one model
//!   thread is ever between yield points ("running"), so an execution
//!   is fully determined by the sequence of scheduling choices.
//! * At each step the scheduler computes the **enabled** set (threads
//!   whose pending op can fire: a `lock` needs the mutex free, a
//!   `join` needs the target finished) and picks one — following a
//!   replay plan (DFS), or a seeded PRNG (random mode).
//! * `Condvar::wait` is a single atomic release-and-block transition;
//!   a notify re-arms each waiter with a pending `lock` of the mutex
//!   it released. A notify with no parked waiter is a no-op — exactly
//!   the semantics that make lost wakeups reachable states.
//! * Sleep sets (Godefroid-style partial-order reduction) prune
//!   schedules that only commute independent operations; the DFS
//!   driver in [`explore`](crate::explore) maintains them across
//!   backtracks via [`PlanStep::sleep_extra`].
//!
//! Detection: double-lock at op post; deadlock / lost wakeup when the
//! enabled set empties with live threads; lock-order edges recorded at
//! every acquire (cycle detection runs over the merged graph in
//! `explore`); assertion failures surface as model panics. Abandoning
//! an execution (prune or first finding) unwinds every blocked thread
//! with an [`AbortToken`] panic payload that the thread wrapper
//! swallows.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::explore::{Finding, FindingKind};

/// Thread id within one session (index into the thread table).
pub(crate) type Tid = usize;

/// How many trace lines a witness keeps (the tail of the execution).
const WITNESS_TAIL: usize = 48;

/// Hard cap on retained trace lines (memory guard; `max_steps` bounds
/// the schedule length separately).
const TRACE_CAP: usize = 10_000;

/// Renders a source location as `file:line:col` — the stable "lock
/// class" identity the lock-order analysis groups by.
pub(crate) fn site_str(loc: &'static Location<'static>) -> String {
    format!("{}:{}:{}", loc.file(), loc.line(), loc.column())
}

/// Classifies an atomic access for the dependency relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AtomicKind {
    /// Pure read (independent with other reads of the same object).
    Load,
    /// Pure write.
    Store,
    /// Read-modify-write.
    Rmw,
}

/// One instrumented operation, posted as a thread's pending transition.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// First transition of every thread (spawn barrier).
    Begin,
    /// Acquire a mutex (enabled iff free).
    Lock {
        /// Object identity (address of the underlying mutex).
        obj: usize,
        /// Creation site (lock class).
        site: &'static Location<'static>,
    },
    /// Release a mutex (always enabled).
    Unlock {
        /// Object identity.
        obj: usize,
        /// Creation site.
        site: &'static Location<'static>,
    },
    /// Atomically release `mutex` and park on `cv`.
    CvWait {
        /// Condvar object identity.
        cv: usize,
        /// Condvar creation site.
        cv_site: &'static Location<'static>,
        /// Mutex released while waiting (re-acquired on wakeup).
        mutex: usize,
        /// The mutex's creation site.
        mutex_site: &'static Location<'static>,
    },
    /// Wake one or all waiters of `cv` (no-op when none are parked).
    Notify {
        /// Condvar object identity.
        cv: usize,
        /// Condvar creation site.
        cv_site: &'static Location<'static>,
        /// `notify_all` vs `notify_one`.
        all: bool,
    },
    /// An atomic memory access.
    Atomic {
        /// Object identity.
        obj: usize,
        /// Access class.
        kind: AtomicKind,
        /// Type label for traces ("AtomicUsize", …).
        label: &'static str,
        /// Call site of the access.
        site: &'static Location<'static>,
    },
    /// Wait for a model thread to finish (enabled iff it has).
    Join {
        /// Target thread.
        target: Tid,
    },
}

impl Op {
    /// The shared objects this op touches, each with a write flag.
    fn objects(&self) -> [Option<(usize, bool)>; 2] {
        match *self {
            Op::Begin | Op::Join { .. } => [None, None],
            Op::Lock { obj, .. } | Op::Unlock { obj, .. } => [Some((obj, true)), None],
            Op::CvWait { cv, mutex, .. } => [Some((cv, true)), Some((mutex, true))],
            Op::Notify { cv, .. } => [Some((cv, true)), None],
            Op::Atomic { obj, kind, .. } => [Some((obj, kind != AtomicKind::Load)), None],
        }
    }

    /// Dependency relation for partial-order reduction: two ops are
    /// dependent when they touch a common object and at least one of
    /// the accesses writes it. Only independent ops may stay asleep
    /// across each other's execution.
    fn dependent(&self, other: &Op) -> bool {
        for a in self.objects().into_iter().flatten() {
            for b in other.objects().into_iter().flatten() {
                if a.0 == b.0 && (a.1 || b.1) {
                    return true;
                }
            }
        }
        false
    }

    /// Human rendering for witness traces.
    fn describe(&self) -> String {
        match *self {
            Op::Begin => "begin".to_string(),
            Op::Lock { site, .. } => format!("lock Mutex@{}", site_str(site)),
            Op::Unlock { site, .. } => format!("unlock Mutex@{}", site_str(site)),
            Op::CvWait {
                cv_site,
                mutex_site,
                ..
            } => format!(
                "wait Condvar@{} (releasing Mutex@{})",
                site_str(cv_site),
                site_str(mutex_site)
            ),
            Op::Notify { cv_site, all, .. } => format!(
                "{} Condvar@{}",
                if all { "notify_all" } else { "notify_one" },
                site_str(cv_site)
            ),
            Op::Atomic {
                kind, label, site, ..
            } => {
                let verb = match kind {
                    AtomicKind::Load => "load",
                    AtomicKind::Store => "store",
                    AtomicKind::Rmw => "rmw",
                };
                format!("{label}.{verb}@{}", site_str(site))
            }
            Op::Join { target } => format!("join t{target}"),
        }
    }
}

/// Lifecycle of a model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    /// Registered but not yet at its first yield point; the scheduler
    /// makes no choice while any thread is here (spawn barrier — this
    /// is what keeps executions independent of OS timing).
    Starting,
    /// Between yield points, executing model code.
    Running,
    /// Parked at a yield point with a pending op.
    Ready,
    /// Parked inside `Condvar::wait`, not schedulable until notified.
    BlockedCv,
    /// Done (body returned, panicked, or aborted).
    Finished,
}

/// Per-thread record.
struct ThreadRec {
    name: String,
    state: TState,
    pending: Option<Op>,
    /// Mutexes currently held: (object, creation site).
    held: Vec<(usize, &'static Location<'static>)>,
    /// Sequence number of the last posted op.
    op_seq: u64,
    /// Sequence number of the last granted op.
    granted: u64,
    /// Set to force the thread to unwind at its next wakeup.
    abort: bool,
}

/// One recorded scheduling choice (≥ 2 enabled threads).
#[derive(Clone, Debug)]
pub(crate) struct ChoiceRec {
    /// Enabled thread ids, in tid order.
    pub enabled: Vec<Tid>,
    /// Index into `enabled` that was taken.
    pub chosen: usize,
    /// Sleep set on entry to this choice point.
    pub sleep0: Vec<Tid>,
}

/// One step of a DFS replay plan.
#[derive(Clone, Debug)]
pub(crate) struct PlanStep {
    /// Index into the enabled set to take at this choice point.
    pub idx: usize,
    /// Enabled tids recorded when this node was first visited; replay
    /// must see the same set or the model is nondeterministic.
    pub expect: Vec<Tid>,
    /// Siblings already explored at this node — added to the sleep set
    /// before descending (the sleep-set POR backtrack rule).
    pub sleep_extra: Vec<Tid>,
}

/// Scheduling policy for one execution.
pub(crate) enum Mode {
    /// Replay `plan`, then take the first non-sleeping choice.
    Dfs {
        /// Choice-point prefix to replay.
        plan: Vec<PlanStep>,
    },
    /// Seeded uniform choice among enabled threads (no sleep sets).
    Random {
        /// SplitMix64 state.
        state: u64,
    },
}

/// SplitMix64 step — the same dependency-free generator `sweep-rng`
/// seeds with; good enough to de-correlate schedule choices.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How an execution ended.
pub(crate) enum Outcome {
    /// Ran to completion (or is still running).
    Clean,
    /// Abandoned as redundant (all enabled threads asleep).
    Pruned,
    /// A bug was detected.
    Found(Finding),
}

/// Mutable session state (all of it behind one std mutex).
struct State {
    threads: Vec<ThreadRec>,
    /// mutex object → holding thread.
    holders: HashMap<usize, Tid>,
    /// condvar object → parked waiters (FIFO), each with the mutex
    /// (object + site) it must re-acquire on wakeup.
    waiters: HashMap<usize, Vec<(Tid, usize, &'static Location<'static>)>>,
    mode: Mode,
    /// Choice points taken so far (indexes `Mode::Dfs::plan`).
    depth: usize,
    choices: Vec<ChoiceRec>,
    /// Current sleep set (threads whose pending op is provably
    /// redundant to schedule here).
    sleep: Vec<Tid>,
    trace: Vec<String>,
    steps: u64,
    max_steps: u64,
    outcome: Outcome,
    /// (from class, to class) → first witness line.
    lock_edges: HashMap<(String, String), String>,
    done: bool,
}

/// Results handed back to the explorer after an execution.
pub(crate) struct RunResult {
    /// How the execution ended.
    pub outcome: Outcome,
    /// Recorded choice points (DFS bookkeeping).
    pub choices: Vec<ChoiceRec>,
    /// Transitions applied.
    pub steps: u64,
    /// Lock-order edges observed: (from class, to class, witness).
    pub lock_edges: Vec<(String, String, String)>,
}

/// One model-check session: the scheduler shared by every thread of a
/// single execution.
pub(crate) struct Session {
    state: StdMutex<State>,
    cv: StdCondvar,
}

/// Panic payload used to unwind threads of an abandoned execution;
/// swallowed by [`run_thread`], invisible to the panic hook (aborts use
/// `resume_unwind`, which skips hooks).
pub(crate) struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// A thread's handle to its session. `None` (the default for every
/// thread that never entered a model) makes the sync shim fall through
/// to real `std::sync` behavior.
#[derive(Clone)]
pub(crate) struct Ctx {
    session: Arc<Session>,
    tid: Tid,
}

/// The calling thread's model context, if it is part of a session.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Ctx {
    pub(crate) fn op_lock(&self, obj: usize, site: &'static Location<'static>) {
        self.session.yield_op(self.tid, Op::Lock { obj, site });
    }

    pub(crate) fn op_unlock(&self, obj: usize, site: &'static Location<'static>) {
        self.session.yield_op(self.tid, Op::Unlock { obj, site });
    }

    pub(crate) fn op_cv_wait(
        &self,
        cv: usize,
        cv_site: &'static Location<'static>,
        mutex: usize,
        mutex_site: &'static Location<'static>,
    ) {
        self.session.yield_op(
            self.tid,
            Op::CvWait {
                cv,
                cv_site,
                mutex,
                mutex_site,
            },
        );
    }

    pub(crate) fn op_notify(&self, cv: usize, cv_site: &'static Location<'static>, all: bool) {
        self.session
            .yield_op(self.tid, Op::Notify { cv, cv_site, all });
    }

    pub(crate) fn op_atomic(
        &self,
        obj: usize,
        kind: AtomicKind,
        label: &'static str,
        site: &'static Location<'static>,
    ) {
        self.session.yield_op(
            self.tid,
            Op::Atomic {
                obj,
                kind,
                label,
                site,
            },
        );
    }

    /// Frees a model mutex during a panic unwind without yielding: the
    /// unwinding thread still owns the running slot, so no other thread
    /// can be granted until it reaches its next yield or finishes.
    pub(crate) fn release_during_unwind(&self, obj: usize) {
        let mut st = self.session.lock_state();
        if st.holders.get(&obj) == Some(&self.tid) {
            st.holders.remove(&obj);
        }
        let tid = self.tid;
        st.threads[tid].held.retain(|(o, _)| *o != obj);
        let line = format!("{}: unlock during unwind", st.threads[tid].name);
        push_trace(&mut st, line);
    }

    pub(crate) fn op_join(&self, target: Tid) {
        self.session.yield_op(self.tid, Op::Join { target });
    }

    pub(crate) fn session(&self) -> &Arc<Session> {
        &self.session
    }
}

fn push_trace(st: &mut State, line: String) {
    if st.trace.len() < TRACE_CAP {
        st.trace.push(line);
    }
}

impl Session {
    /// A fresh session with the given scheduling mode and step bound.
    pub(crate) fn new(mode: Mode, max_steps: u64) -> Arc<Session> {
        Arc::new(Session {
            state: StdMutex::new(State {
                threads: Vec::new(),
                holders: HashMap::new(),
                waiters: HashMap::new(),
                mode,
                depth: 0,
                choices: Vec::new(),
                sleep: Vec::new(),
                trace: Vec::new(),
                steps: 0,
                max_steps,
                outcome: Outcome::Clean,
                lock_edges: HashMap::new(),
                done: false,
            }),
            cv: StdCondvar::new(),
        })
    }

    fn lock_state(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a thread (state `Starting`); the scheduler stalls
    /// until the thread reaches its `Begin` yield, so registration must
    /// be followed by actually running [`run_thread`].
    pub(crate) fn register_thread(&self) -> Tid {
        let mut st = self.lock_state();
        let name = format!("t{}", st.threads.len());
        st.threads.push(ThreadRec {
            name,
            state: TState::Starting,
            pending: None,
            held: Vec::new(),
            op_seq: 0,
            granted: 0,
            abort: false,
        });
        st.threads.len() - 1
    }

    /// Posts `op` as `tid`'s pending transition and blocks until the
    /// scheduler grants it (or unwinds the thread on abort).
    fn yield_op(&self, tid: Tid, op: Op) {
        let mut st = self.lock_state();
        if st.threads[tid].abort {
            drop(st);
            if std::thread::panicking() {
                // Mid-unwind (a Drop guard doing instrumented work):
                // starting a second panic would abort the process. The
                // execution is being discarded anyway — skip the op.
                return;
            }
            std::panic::resume_unwind(Box::new(AbortToken));
        }
        // Double-lock: detectable at post time (waiting would just
        // report an opaque deadlock later).
        if let Op::Lock { obj, site } = op {
            if st.threads[tid].held.iter().any(|(o, _)| *o == obj) {
                let message = format!(
                    "double lock: thread '{}' re-acquired Mutex@{} it already holds",
                    st.threads[tid].name,
                    site_str(site),
                );
                let witness = witness_tail(&st, &[]);
                self.raise(
                    &mut st,
                    Finding {
                        kind: FindingKind::DoubleLock,
                        message,
                        witness,
                    },
                );
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                std::panic::resume_unwind(Box::new(AbortToken));
            }
        }
        let rec = &mut st.threads[tid];
        rec.pending = Some(op);
        rec.state = TState::Ready;
        rec.op_seq += 1;
        let seq = rec.op_seq;
        self.schedule(&mut st);
        loop {
            if st.threads[tid].abort {
                drop(st);
                if std::thread::panicking() {
                    // See above: never panic out of an unwinding Drop.
                    return;
                }
                std::panic::resume_unwind(Box::new(AbortToken));
            }
            if st.threads[tid].granted >= seq {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The scheduler: runs under the state lock whenever a thread
    /// changes state, granting at most one thread before returning.
    fn schedule(&self, st: &mut State) {
        loop {
            if !matches!(st.outcome, Outcome::Clean) {
                return;
            }
            if st
                .threads
                .iter()
                .any(|t| matches!(t.state, TState::Running | TState::Starting))
            {
                // Someone is executing model code (or racing to its
                // first yield): no choice until the system quiesces.
                return;
            }
            let live: Vec<Tid> = (0..st.threads.len())
                .filter(|&t| st.threads[t].state != TState::Finished)
                .collect();
            if live.is_empty() {
                st.done = true;
                self.cv.notify_all();
                return;
            }
            let enabled: Vec<Tid> = live
                .iter()
                .copied()
                .filter(|&t| st.threads[t].state == TState::Ready && Self::is_enabled(st, t))
                .collect();
            if enabled.is_empty() {
                self.report_stuck(st, &live);
                return;
            }
            let Some(idx) = self.pick(st, &enabled) else {
                // Every enabled thread is asleep: this schedule only
                // permutes independent ops of one already explored.
                st.outcome = Outcome::Pruned;
                self.abort_all(st);
                return;
            };
            if self.apply(st, enabled[idx]) {
                self.cv.notify_all();
                return;
            }
            // The op parked its thread (CvWait) — pick again.
        }
    }

    /// Can `tid`'s pending op fire right now?
    fn is_enabled(st: &State, tid: Tid) -> bool {
        match st.threads[tid].pending {
            Some(Op::Lock { obj, .. }) => !st.holders.contains_key(&obj),
            Some(Op::Join { target }) => st.threads[target].state == TState::Finished,
            Some(_) => true,
            None => false,
        }
    }

    /// Chooses an index into `enabled` per the session mode, recording
    /// a choice point when there was a real alternative. `None` prunes.
    fn pick(&self, st: &mut State, enabled: &[Tid]) -> Option<usize> {
        let sleep0 = st.sleep.clone();
        let non_sleeping: Vec<usize> = (0..enabled.len())
            .filter(|&i| !sleep0.contains(&enabled[i]))
            .collect();
        let mut sleep_extra: Vec<Tid> = Vec::new();
        let idx = match &mut st.mode {
            Mode::Dfs { plan } => {
                if st.depth < plan.len() && enabled.len() >= 2 {
                    let step = &plan[st.depth];
                    if step.expect != enabled || step.idx >= enabled.len() {
                        let message = format!(
                            "replay divergence at choice {}: expected enabled {:?}, got {:?} \
                             (model behavior depends on something besides the schedule)",
                            st.depth, step.expect, enabled,
                        );
                        let witness = witness_tail(st, &[]);
                        self.raise(
                            st,
                            Finding {
                                kind: FindingKind::ReplayDivergence,
                                message,
                                witness,
                            },
                        );
                        return None;
                    }
                    sleep_extra.clone_from(&step.sleep_extra);
                    step.idx
                } else {
                    *non_sleeping.first()?
                }
            }
            Mode::Random { state } => {
                if non_sleeping.is_empty() {
                    return None;
                }
                let r = splitmix64(state) as usize;
                non_sleeping[r % non_sleeping.len()]
            }
        };
        if enabled.len() >= 2 {
            st.choices.push(ChoiceRec {
                enabled: enabled.to_vec(),
                chosen: idx,
                sleep0,
            });
            st.depth += 1;
        }
        // Descend: previously explored siblings join the sleep set, and
        // anything dependent with the op about to execute is woken
        // (handled in `apply`, which knows the op).
        for t in sleep_extra {
            if !st.sleep.contains(&t) {
                st.sleep.push(t);
            }
        }
        Some(idx)
    }

    /// Applies `tid`'s pending op. Returns `true` when the thread was
    /// granted (resumes running), `false` when it parked (CvWait).
    fn apply(&self, st: &mut State, tid: Tid) -> bool {
        let Some(op) = st.threads[tid].pending.clone() else {
            return false;
        };
        st.steps += 1;
        if st.steps > st.max_steps {
            let message = format!(
                "step bound exceeded: {} transitions without termination (livelock, or raise \
                 max_steps)",
                st.max_steps,
            );
            let witness = witness_tail(st, &[]);
            self.raise(
                st,
                Finding {
                    kind: FindingKind::StepBound,
                    message,
                    witness,
                },
            );
            return false;
        }
        let line = format!(
            "{:>4}  {}: {}",
            st.steps,
            st.threads[tid].name,
            op.describe()
        );
        push_trace(st, line);

        // Sleep-set maintenance: executing an op wakes every sleeper
        // whose pending op is dependent with it.
        let sleep = std::mem::take(&mut st.sleep);
        st.sleep = sleep
            .into_iter()
            .filter(|&s| {
                s != tid
                    && st.threads[s]
                        .pending
                        .as_ref()
                        .is_some_and(|p| !p.dependent(&op))
            })
            .collect();

        match op {
            Op::Begin | Op::Atomic { .. } | Op::Join { .. } | Op::Unlock { .. } => {
                if let Op::Unlock { obj, .. } = op {
                    if st.holders.get(&obj) == Some(&tid) {
                        st.holders.remove(&obj);
                    }
                    st.threads[tid].held.retain(|(o, _)| *o != obj);
                }
                if matches!(op, Op::Begin) {
                    // A new thread changes future enabled sets in ways
                    // the dependency relation can't see; be conservative.
                    st.sleep.clear();
                }
                self.grant(st, tid)
            }
            Op::Lock { obj, site } => {
                st.holders.insert(obj, tid);
                let to = site_str(site);
                for &(hobj, hsite) in &st.threads[tid].held {
                    if hobj != obj {
                        let from = site_str(hsite);
                        let witness = format!(
                            "thread '{}' acquired Mutex@{to} while holding Mutex@{from} (step {})",
                            st.threads[tid].name, st.steps,
                        );
                        st.lock_edges.entry((from, to.clone())).or_insert(witness);
                    }
                }
                st.threads[tid].held.push((obj, site));
                self.grant(st, tid)
            }
            Op::CvWait {
                cv,
                mutex,
                mutex_site,
                ..
            } => {
                if st.holders.get(&mutex) == Some(&tid) {
                    st.holders.remove(&mutex);
                }
                st.threads[tid].held.retain(|(o, _)| *o != mutex);
                st.waiters
                    .entry(cv)
                    .or_default()
                    .push((tid, mutex, mutex_site));
                st.threads[tid].state = TState::BlockedCv;
                st.threads[tid].pending = None;
                false
            }
            Op::Notify { cv, all, .. } => {
                let woken: Vec<(Tid, usize, &'static Location<'static>)> = {
                    let queue = st.waiters.entry(cv).or_default();
                    if all {
                        std::mem::take(queue)
                    } else if queue.is_empty() {
                        Vec::new()
                    } else {
                        vec![queue.remove(0)]
                    }
                };
                for (w, mutex, mutex_site) in woken {
                    st.threads[w].state = TState::Ready;
                    st.threads[w].pending = Some(Op::Lock {
                        obj: mutex,
                        site: mutex_site,
                    });
                }
                // Wakeups change enabledness invisibly to the
                // dependency relation; clear the sleep set.
                st.sleep.clear();
                self.grant(st, tid)
            }
        }
    }

    fn grant(&self, st: &mut State, tid: Tid) -> bool {
        let rec = &mut st.threads[tid];
        rec.pending = None;
        rec.state = TState::Running;
        rec.granted = rec.op_seq;
        true
    }

    /// No enabled thread but live ones remain: deadlock or lost wakeup.
    fn report_stuck(&self, st: &mut State, live: &[Tid]) {
        let any_cv = live
            .iter()
            .any(|&t| st.threads[t].state == TState::BlockedCv);
        let mut status = Vec::new();
        for &t in live {
            let rec = &st.threads[t];
            let what = match rec.state {
                TState::BlockedCv => "parked in Condvar::wait (nobody left to notify)".to_string(),
                _ => rec
                    .pending
                    .as_ref()
                    .map(|p| format!("blocked posting `{}`", p.describe()))
                    .unwrap_or_else(|| "blocked".to_string()),
            };
            let held: Vec<String> = rec
                .held
                .iter()
                .map(|(_, s)| format!("Mutex@{}", site_str(s)))
                .collect();
            status.push(format!(
                "thread '{}': {what}; holds [{}]",
                rec.name,
                held.join(", ")
            ));
        }
        let (kind, message) = if any_cv {
            (
                FindingKind::LostWakeup,
                format!(
                    "lost wakeup: {} live thread(s) stuck, at least one parked in \
                     Condvar::wait with no live thread able to signal it",
                    live.len()
                ),
            )
        } else {
            (
                FindingKind::Deadlock,
                format!(
                    "deadlock: {} live thread(s) all blocked on lock acquisition or join",
                    live.len()
                ),
            )
        };
        let witness = witness_tail(st, &status);
        self.raise(
            st,
            Finding {
                kind,
                message,
                witness,
            },
        );
    }

    /// Records the first finding and aborts the execution.
    fn raise(&self, st: &mut State, finding: Finding) {
        if matches!(st.outcome, Outcome::Clean) {
            st.outcome = Outcome::Found(finding);
        }
        self.abort_all(st);
    }

    fn abort_all(&self, st: &mut State) {
        for t in &mut st.threads {
            if t.state != TState::Finished {
                t.abort = true;
            }
        }
        self.cv.notify_all();
    }

    /// Marks `tid` finished, releases anything it still holds, and
    /// reschedules.
    fn finish_thread(&self, tid: Tid) {
        let mut st = self.lock_state();
        let held = std::mem::take(&mut st.threads[tid].held);
        for (obj, _) in held {
            if st.holders.get(&obj) == Some(&tid) {
                st.holders.remove(&obj);
            }
        }
        for queue in st.waiters.values_mut() {
            queue.retain(|(w, _, _)| *w != tid);
        }
        st.threads[tid].state = TState::Finished;
        st.threads[tid].pending = None;
        // Join enabledness changed; conservatively wake all sleepers.
        st.sleep.clear();
        let line = format!("      {}: finished", st.threads[tid].name);
        push_trace(&mut st, line);
        self.schedule(&mut st);
        self.cv.notify_all();
    }

    /// Records a genuine model panic (assertion failure) as a finding.
    fn record_panic(&self, tid: Tid, message: String) {
        let mut st = self.lock_state();
        let message = format!(
            "model panic in thread '{}': {message}",
            st.threads[tid].name
        );
        let witness = witness_tail(&st, &[]);
        self.raise(
            &mut st,
            Finding {
                kind: FindingKind::ModelPanic,
                message,
                witness,
            },
        );
    }

    /// Blocks the driver until every registered thread has finished.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        loop {
            if st.threads.iter().all(|t| t.state == TState::Finished) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Harvests the execution's results (driver-side, after
    /// [`wait_all_finished`]).
    pub(crate) fn take_results(&self) -> RunResult {
        let mut st = self.lock_state();
        let outcome = std::mem::replace(&mut st.outcome, Outcome::Clean);
        let choices = std::mem::take(&mut st.choices);
        let lock_edges = std::mem::take(&mut st.lock_edges)
            .into_iter()
            .map(|((from, to), w)| (from, to, w))
            .collect();
        RunResult {
            outcome,
            choices,
            steps: st.steps,
            lock_edges,
        }
    }
}

/// The last trace lines plus `extra` status lines — the witness
/// attached to findings.
fn witness_tail(st: &State, extra: &[String]) -> Vec<String> {
    let start = st.trace.len().saturating_sub(WITNESS_TAIL);
    let mut out: Vec<String> = st.trace[start..].to_vec();
    out.extend_from_slice(extra);
    out
}

/// Runs `body` as model thread `tid` of `session`: installs the thread
/// context, passes the spawn barrier, converts panics (assertion
/// failures → findings, [`AbortToken`] → silence), and always marks the
/// thread finished.
pub(crate) fn run_thread(session: &Arc<Session>, tid: Tid, body: impl FnOnce()) {
    set_current(Some(Ctx {
        session: Arc::clone(session),
        tid,
    }));
    session.yield_op(tid, Op::Begin);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    if let Err(payload) = result {
        if !payload.is::<AbortToken>() {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            session.record_panic(tid, message);
        }
    }
    session.finish_thread(tid);
    set_current(None);
}

/// Installs (once, process-wide) a panic hook that silences panics on
/// model threads (named `sweep-mc-*`): fixture models panic by design
/// on every buggy schedule, and the default hook would spray hundreds
/// of backtraces over the report. All other threads keep the previous
/// hook's behavior.
pub(crate) fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sweep-mc-"));
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

/// Registers a new model thread for the *current* session (spawn path).
pub(crate) fn register_child() -> Option<(Arc<Session>, Tid)> {
    let ctx = current()?;
    let tid = ctx.session.register_thread();
    Some((Arc::clone(ctx.session()), tid))
}

/// Immediately finishes a registered thread that never ran (OS spawn
/// failure) so the driver doesn't wait on it forever.
pub(crate) fn finish_stillborn(session: &Arc<Session>, tid: Tid) {
    session.finish_thread(tid);
}
