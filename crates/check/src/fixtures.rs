//! Intentionally buggy models — the checker's own regression suite.
//!
//! Each fixture seeds one bug class the checker must catch: an
//! inverted lock order (deadlock + lock-order cycle), a
//! check-then-wait consumer (lost wakeup), a single-flight leader that
//! abandons its followers (liveness), and a peek/pop steal race
//! (non-linearizable outcome, caught by an assertion). `sweep check
//! --fixtures` runs them all and *fails* if any fixture comes back
//! clean — a checker that stops seeing seeded bugs is broken.

use std::sync::Arc;

use crate::sync::{Condvar, Mutex};
use crate::thread;

/// A named buggy model and the one-line description of its seeded bug.
pub struct Fixture {
    /// Model name (shows up in reports; "single-flight" in the name
    /// routes liveness findings to SW027).
    pub name: &'static str,
    /// What bug is seeded and what the checker should report.
    pub summary: &'static str,
    /// The model body, run under [`explore`](crate::explore::explore).
    pub body: fn(),
}

/// All fixtures, in documentation order.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "fixture.inverted-locks",
        summary: "AB-BA lock order: expect a deadlock schedule and a lock-order cycle",
        body: inverted_locks,
    },
    Fixture {
        name: "fixture.lost-wakeup",
        summary: "check-then-wait without re-check: expect a lost-wakeup schedule",
        body: lost_wakeup,
    },
    Fixture {
        name: "fixture.single-flight-leak",
        summary: "single-flight leader abandons followers: expect a liveness stall",
        body: leaky_single_flight,
    },
    Fixture {
        name: "fixture.buggy-deque",
        summary: "peek/unlock/pop steal race: expect a non-linearizable outcome (model panic)",
        body: buggy_deque,
    },
];

fn ride<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(|p| p.into_inner())
}

/// Two mutexes acquired in opposite orders by two threads — the
/// textbook AB-BA deadlock, and a cycle in the lock-order graph even
/// on schedules that happen not to deadlock.
pub fn inverted_locks() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let _gb = ride(b2.lock());
        let _ga = ride(a2.lock());
    });
    {
        let _ga = ride(a.lock());
        let _gb = ride(b.lock());
    }
    let _ = t.join();
}

/// A consumer that checks the flag, *releases the lock*, and only then
/// parks on the condvar without re-checking. The producer's notify can
/// land in the window between check and park, where there is no waiter
/// to receive it — the wakeup is lost and the consumer parks forever.
pub fn lost_wakeup() {
    let flag = Arc::new(Mutex::new(false));
    let cv = Arc::new(Condvar::new());
    let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cv));
    let producer = thread::spawn(move || {
        *ride(f2.lock()) = true;
        c2.notify_one();
    });
    // BUG: the check and the wait are two separate critical sections.
    let ready = { *ride(flag.lock()) };
    if !ready {
        let g = ride(flag.lock());
        // BUG: single wait, no `while !*g` predicate loop.
        let _g = ride(cv.wait(g));
    }
    let _ = producer.join();
}

/// A single-flight cell whose leader claims the computation and then
/// returns without ever publishing a result or waking anyone — the
/// exact failure mode `sweep-serve`'s leader-panic guard exists to
/// prevent. The follower wedges in its wait loop on every schedule.
pub fn leaky_single_flight() {
    struct Flight {
        done: Mutex<Option<u32>>,
        cv: Condvar,
        claimed: Mutex<bool>,
    }
    let flight = Arc::new(Flight {
        done: Mutex::new(None),
        cv: Condvar::new(),
        claimed: Mutex::new(false),
    });
    let f2 = Arc::clone(&flight);
    let follower = thread::spawn(move || {
        let mut done = ride(f2.done.lock());
        while done.is_none() {
            done = ride(f2.cv.wait(done));
        }
    });
    // Leader: claims the flight…
    *ride(flight.claimed.lock()) = true;
    // …and "forgets" to publish + notify (no abandon guard). BUG.
    let _ = follower.join();
}

/// A steal that peeks the victim's back slot, drops the lock, and then
/// re-locks to pop "what it peeked" — while the owner may have popped
/// that very task in the window. The outcome duplicates one task and
/// loses another; the final assertion is the linearizability check.
pub fn buggy_deque() {
    use std::collections::VecDeque;
    let deque = Arc::new(Mutex::new(VecDeque::from(vec![1u32, 2])));
    let taken = Arc::new(Mutex::new(Vec::<u32>::new()));
    let (d2, t2) = (Arc::clone(&deque), Arc::clone(&taken));
    let stealer = thread::spawn(move || {
        // Peek under the lock…
        let peeked = { ride(d2.lock()).back().copied() };
        // …BUG: lock released between peek and pop.
        if let Some(task) = peeked {
            let popped = ride(d2.lock()).pop_back();
            // Records the *peeked* task while having popped whatever
            // was at the back by now.
            if popped.is_some() {
                ride(t2.lock()).push(task);
            }
        }
    });
    if let Some(task) = ride(deque.lock()).pop_back() {
        ride(taken.lock()).push(task);
    }
    let _ = stealer.join();
    // Linearizability: every task executed exactly once.
    let mut all = ride(taken.lock()).clone();
    all.extend(ride(deque.lock()).iter().copied());
    all.sort_unstable();
    assert_eq!(all, vec![1, 2], "deque steal lost or duplicated a task");
}
