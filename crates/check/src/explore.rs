//! The exploration driver: re-runs a model body under many schedules
//! and aggregates what the scheduler saw.
//!
//! Two phases per [`explore`] call:
//!
//! 1. **Bounded exhaustive DFS** (stateless, CHESS-style): each
//!    execution replays a prefix of scheduling choices and then runs
//!    "first enabled" to completion; the recorded choice points form a
//!    tree that is backtracked deepest-first. Sleep sets (Godefroid's
//!    partial-order reduction) prune schedules that only commute
//!    independent operations, which is what makes small models — a few
//!    threads, tens of yield points — exhaustible in hundreds rather
//!    than millions of executions. The phase stops at
//!    [`Config::max_executions`], at the first finding, or when the
//!    tree is exhausted (`complete = true`).
//! 2. **Seeded random schedules**: [`Config::random_schedules`]
//!    additional executions picking uniformly among enabled threads
//!    with a SplitMix64 stream derived from [`Config::seed`] — the
//!    long-tail supplement for models too large to exhaust.
//!
//! Independently of schedule findings, every execution's lock
//! acquisitions feed a **lock-order graph** over lock *classes*
//! (creation sites); cycles in the merged graph are reported as
//! [`LockCycle`]s with one witness per edge even when no explored
//! schedule happened to hit the deadlock itself.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::engine::{self, Mode, Outcome, PlanStep, RunResult, Session};

/// Exploration limits and seeds.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cap on DFS executions (exhaustion may finish far earlier;
    /// hitting the cap leaves `complete = false`).
    pub max_executions: u64,
    /// Cap on scheduled transitions per execution; exceeding it is
    /// reported as a [`FindingKind::StepBound`] finding (livelock, or a
    /// model too big for the bound).
    pub max_steps: u64,
    /// Random executions appended after the DFS phase.
    pub random_schedules: u64,
    /// Master seed for the random phase (schedule `s` uses stream
    /// `seed + s·φ64`).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_executions: 2000,
            max_steps: 20_000,
            random_schedules: 0,
            seed: 0x5eed_0bad_c0ff_ee00,
        }
    }
}

/// Classification of a schedule finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Live threads all blocked on lock acquisition or join.
    Deadlock,
    /// A thread re-acquired a mutex it already holds.
    DoubleLock,
    /// Threads parked in `Condvar::wait` with nobody left to signal.
    LostWakeup,
    /// A cycle in the lock-order graph (synthesized from
    /// [`LockCycle`]s by consumers; the engine reports actual deadlock
    /// schedules as [`FindingKind::Deadlock`]).
    LockOrderCycle,
    /// The model body panicked (assertion failure — e.g. a
    /// non-linearizable outcome check).
    ModelPanic,
    /// The execution exceeded [`Config::max_steps`].
    StepBound,
    /// Replaying a schedule prefix reproduced a different enabled set —
    /// the model's behavior depends on something besides the schedule
    /// (real time, ambient randomness, leaked state between runs).
    ReplayDivergence,
}

impl FindingKind {
    /// Short stable label (used in reports and the CLI).
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::Deadlock => "deadlock",
            FindingKind::DoubleLock => "double-lock",
            FindingKind::LostWakeup => "lost-wakeup",
            FindingKind::LockOrderCycle => "lock-order-cycle",
            FindingKind::ModelPanic => "model-panic",
            FindingKind::StepBound => "step-bound",
            FindingKind::ReplayDivergence => "replay-divergence",
        }
    }
}

/// A bug found by the checker, with the schedule tail that exhibits it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// What class of bug.
    pub kind: FindingKind,
    /// One-line description.
    pub message: String,
    /// Witness: the trailing schedule trace plus per-thread status.
    pub witness: Vec<String>,
}

/// One observed lock-order edge: "some thread acquired `to` while
/// holding `from`" (classes are creation sites, `file:line:col`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock class held.
    pub from: String,
    /// Lock class acquired under it.
    pub to: String,
    /// First observed witness line for this edge.
    pub witness: String,
}

/// A cycle in the merged lock-order graph — a potential deadlock even
/// if no explored schedule realized it.
#[derive(Clone, Debug)]
pub struct LockCycle {
    /// The classes along the cycle, smallest-first rotation,
    /// `classes[i] → classes[(i+1) % n]`.
    pub classes: Vec<String>,
    /// One witness per edge of the cycle.
    pub witnesses: Vec<String>,
}

/// Aggregated result of one [`explore`] call.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// The model name the caller supplied.
    pub model: String,
    /// Executions actually run (DFS + random).
    pub executions: u64,
    /// Total scheduled transitions across all executions.
    pub steps: u64,
    /// Whether the DFS phase exhausted the (sleep-set-reduced)
    /// schedule tree.
    pub complete: bool,
    /// The first schedule finding, if any (exploration stops at it).
    pub finding: Option<Finding>,
    /// Every lock-order edge observed, sorted.
    pub lock_edges: Vec<LockEdge>,
    /// Cycles in the lock-order graph.
    pub lock_cycles: Vec<LockCycle>,
}

impl ExploreReport {
    /// True when the model failed the check (schedule finding or
    /// lock-order cycle).
    pub fn has_finding(&self) -> bool {
        self.finding.is_some() || !self.lock_cycles.is_empty()
    }
}

/// DFS bookkeeping for one recorded choice point.
struct Node {
    /// Enabled tids at this point.
    enabled: Vec<usize>,
    /// Sleep set on entry.
    sleep0: Vec<usize>,
    /// Indices into `enabled` explored so far, in order; the last one
    /// is the current path's choice.
    tried: Vec<usize>,
}

/// Runs `body` under many schedules and reports everything found.
///
/// `body` is invoked once per execution on a fresh model-check session;
/// it typically builds the data structure under test, spawns
/// [`thread`](crate::thread) workers, joins them, and asserts
/// postconditions. It must be deterministic apart from scheduling
/// (no wall-clock, no ambient randomness, no state leaked across
/// calls), which the replay machinery verifies and reports as
/// [`FindingKind::ReplayDivergence`] when violated.
pub fn explore<F>(model: &str, cfg: &Config, body: F) -> ExploreReport
where
    F: Fn() + Send + Sync,
{
    engine::install_panic_hook();
    let mut executions = 0u64;
    let mut steps = 0u64;
    let mut complete = false;
    let mut finding: Option<Finding> = None;
    let mut edges: HashMap<(String, String), String> = HashMap::new();

    // Phase 1: bounded exhaustive DFS with sleep sets.
    let mut stack: Vec<Node> = Vec::new();
    let mut plan: Vec<PlanStep> = Vec::new();
    while executions < cfg.max_executions {
        let result = run_once(&body, Mode::Dfs { plan: plan.clone() }, cfg.max_steps);
        executions += 1;
        steps += result.steps;
        merge_edges(&mut edges, result.lock_edges);
        match result.outcome {
            Outcome::Found(f) => {
                finding = Some(f);
                break;
            }
            Outcome::Clean | Outcome::Pruned => {}
        }
        // Choice points beyond the replayed prefix are new tree nodes.
        for (d, c) in result.choices.iter().enumerate() {
            if d >= stack.len() {
                stack.push(Node {
                    enabled: c.enabled.clone(),
                    sleep0: c.sleep0.clone(),
                    tried: vec![c.chosen],
                });
            }
        }
        match next_plan(&mut stack) {
            Some(p) => plan = p,
            None => {
                complete = true;
                break;
            }
        }
    }

    // Phase 2: seeded random schedules (skipped once a bug is in hand).
    if finding.is_none() {
        for s in 0..cfg.random_schedules {
            let state = cfg.seed.wrapping_add(s.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let result = run_once(&body, Mode::Random { state }, cfg.max_steps);
            executions += 1;
            steps += result.steps;
            merge_edges(&mut edges, result.lock_edges);
            if let Outcome::Found(f) = result.outcome {
                finding = Some(f);
                break;
            }
        }
    }

    let lock_cycles = find_cycles(&edges);
    let mut lock_edges: Vec<LockEdge> = edges
        .into_iter()
        .map(|((from, to), witness)| LockEdge { from, to, witness })
        .collect();
    lock_edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));

    ExploreReport {
        model: model.to_string(),
        executions,
        steps,
        complete,
        finding,
        lock_edges,
        lock_cycles,
    }
}

/// One execution: fresh session, root thread runs `body`, harvest.
fn run_once<F>(body: &F, mode: Mode, max_steps: u64) -> RunResult
where
    F: Fn() + Send + Sync,
{
    let session = Session::new(mode, max_steps);
    let tid = session.register_thread();
    let sess = &session;
    std::thread::scope(|scope| {
        let spawned = std::thread::Builder::new()
            .name(format!("sweep-mc-{tid}"))
            .spawn_scoped(scope, move || {
                engine::run_thread(sess, tid, body);
            });
        if spawned.is_err() {
            engine::finish_stillborn(sess, tid);
        }
        // Scope exit joins the root; model-spawned children are real
        // detached threads, so wait on the session, not the OS.
    });
    session.wait_all_finished();
    session.take_results()
}

/// Keeps the first witness for each lock-order edge.
fn merge_edges(into: &mut HashMap<(String, String), String>, edges: Vec<(String, String, String)>) {
    for (from, to, witness) in edges {
        into.entry((from, to)).or_insert(witness);
    }
}

/// Advances the DFS: finds the deepest node with an untried,
/// non-sleeping alternative, commits to it, and rebuilds the replay
/// plan. `None` means the (reduced) schedule tree is exhausted.
fn next_plan(stack: &mut Vec<Node>) -> Option<Vec<PlanStep>> {
    loop {
        let node = stack.last_mut()?;
        let next = (0..node.enabled.len())
            .find(|j| !node.tried.contains(j) && !node.sleep0.contains(&node.enabled[*j]));
        if let Some(j) = next {
            node.tried.push(j);
            return Some(build_plan(stack));
        }
        stack.pop();
    }
}

/// The replay plan for the stack's current path: at each node take its
/// last tried index, putting earlier-tried siblings to sleep (the
/// sleep-set backtracking rule).
fn build_plan(stack: &[Node]) -> Vec<PlanStep> {
    stack
        .iter()
        .map(|n| {
            let idx = *n.tried.last().unwrap_or(&0);
            let sleep_extra = n.tried[..n.tried.len().saturating_sub(1)]
                .iter()
                .map(|&t| n.enabled[t])
                .collect();
            PlanStep {
                idx,
                expect: n.enabled.clone(),
                sleep_extra,
            }
        })
        .collect()
}

/// Finds elementary cycles in the lock-order graph (tiny graphs: a
/// handful of classes), deduplicated by rotation-normalized class
/// sequence and capped defensively.
fn find_cycles(edges: &HashMap<(String, String), String>) -> Vec<LockCycle> {
    const MAX_CYCLES: usize = 8;
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    for targets in adj.values_mut() {
        targets.sort_unstable();
        targets.dedup();
    }

    let mut cycles: Vec<LockCycle> = Vec::new();
    let mut seen: HashSet<Vec<String>> = HashSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS from `start` along the sorted adjacency, tracking the
        // current path; an edge back into the path closes a cycle.
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        while let Some(&node) = path.last() {
            let targets = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            let i = *iters.last().unwrap_or(&0);
            if i >= targets.len() {
                path.pop();
                iters.pop();
                if let Some(last) = iters.last_mut() {
                    *last += 1;
                }
                continue;
            }
            let next = targets[i];
            if let Some(pos) = path.iter().position(|&p| p == next) {
                // Cycle: path[pos..] -> next. Normalize rotation.
                let cyc: Vec<String> = path[pos..].iter().map(|s| (*s).to_string()).collect();
                let key = normalize(&cyc);
                if seen.insert(key.clone()) && cycles.len() < MAX_CYCLES {
                    let n = key.len();
                    let witnesses = (0..n)
                        .filter_map(|i| {
                            edges
                                .get(&(key[i].clone(), key[(i + 1) % n].clone()))
                                .cloned()
                        })
                        .collect();
                    cycles.push(LockCycle {
                        classes: key,
                        witnesses,
                    });
                }
                if let Some(last) = iters.last_mut() {
                    *last += 1;
                }
            } else if path.len() < 16 {
                path.push(next);
                iters.push(0);
            } else if let Some(last) = iters.last_mut() {
                *last += 1;
            }
        }
        if cycles.len() >= MAX_CYCLES {
            break;
        }
    }
    cycles
}

/// Rotates a cycle so its lexicographically smallest class comes first.
fn normalize(cycle: &[String]) -> Vec<String> {
    let Some(min_pos) = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}
