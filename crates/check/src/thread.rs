//! Thread spawning for model bodies.
//!
//! Without the `model-check` feature this is `std::thread`. With it,
//! [`spawn`] registers the child with the calling thread's model
//! session before the OS thread starts, so the scheduler treats the
//! spawn as a barrier (no scheduling choice is made until the child
//! reaches its first yield point) and every child op is explored like
//! any other. Threads spawned *outside* a session fall through to
//! plain `std::thread::spawn`.

#[cfg(not(feature = "model-check"))]
pub use std::thread::{spawn, JoinHandle};

#[cfg(feature = "model-check")]
pub use instrumented::{spawn, JoinHandle};

#[cfg(feature = "model-check")]
mod instrumented {
    use crate::engine;

    /// Handle to a spawned model thread (or plain thread, outside a
    /// session). Mirrors the `std::thread::JoinHandle` surface the
    /// workspace uses: `join`.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        /// Model thread id, when spawned under a session.
        target: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish; under a session the join is
        /// itself a scheduled transition (enabled only once the target
        /// has finished), so join-dependent deadlocks are explored too.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(target), Some(ctx)) = (self.target, engine::current()) {
                ctx.op_join(target);
            }
            self.inner.join()
        }
    }

    /// Spawns a thread. Under a model session the child is registered
    /// first and runs through the engine wrapper (context install,
    /// spawn barrier, panic capture); otherwise this is
    /// `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match engine::register_child() {
            Some((session, tid)) => {
                let child_session = std::sync::Arc::clone(&session);
                let spawned = std::thread::Builder::new()
                    .name(format!("sweep-mc-{tid}"))
                    .spawn(move || {
                        let mut out: Option<T> = None;
                        engine::run_thread(&child_session, tid, || {
                            out = Some(f());
                        });
                        // `None` only on abort/panic, where join()
                        // reports Err anyway before unwrapping.
                        match out {
                            Some(v) => v,
                            None => std::panic::resume_unwind(Box::new(engine::AbortToken)),
                        }
                    });
                match spawned {
                    Ok(inner) => JoinHandle {
                        inner,
                        target: Some(tid),
                    },
                    Err(e) => {
                        // The registered slot must still finish or the
                        // driver would wait forever.
                        engine::finish_stillborn(&session, tid);
                        panic!("model thread spawn failed: {e}");
                    }
                }
            }
            None => JoinHandle {
                inner: std::thread::spawn(f),
                target: None,
            },
        }
    }
}
