//! The instrumented synchronization shim.
//!
//! Without the `model-check` feature this module is nothing but
//! re-exports of `std::sync` — zero wrapper state, zero cost, type
//! identity with std (asserted by a compile-time test). With the
//! feature, the same names resolve to wrappers that post every
//! operation to the model-check engine as a yield point — *when the
//! calling thread is registered with a session*.
//! Unregistered threads fall straight through to the real `std::sync`
//! primitives, so feature unification can never change the behavior of
//! ordinary code.

#[cfg(not(feature = "model-check"))]
pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

/// Atomic types (std re-exports without the feature, instrumented
/// wrappers with it).
#[cfg(not(feature = "model-check"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(feature = "model-check")]
pub use instrumented::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "model-check")]
pub use std::sync::{LockResult, PoisonError};

/// Atomic types (std re-exports without the feature, instrumented
/// wrappers with it).
#[cfg(feature = "model-check")]
pub mod atomic {
    pub use super::instrumented::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(feature = "model-check")]
mod instrumented {
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::atomic::Ordering;
    use std::sync::{LockResult, Mutex as StdMutex, PoisonError};

    use crate::engine::{self, AtomicKind};

    /// A mutex that yields to the model-check scheduler on lock and
    /// unlock when the calling thread belongs to a session, and behaves
    /// exactly like [`std::sync::Mutex`] otherwise.
    pub struct Mutex<T> {
        inner: StdMutex<T>,
        site: &'static Location<'static>,
    }

    impl<T> Mutex<T> {
        /// Creates a mutex. The *call site* becomes the mutex's lock
        /// class for lock-order analysis, so two mutexes created on
        /// distinct source lines are distinct classes while every
        /// element of a `vec![Mutex::new(..); n]`-style collection
        /// shares one.
        #[track_caller]
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: StdMutex::new(value),
                site: Location::caller(),
            }
        }

        /// The object identity used by the scheduler: the address of
        /// the underlying mutex (stable for the lifetime of the model,
        /// which keeps its mutexes pinned behind `Arc`s or struct
        /// fields).
        fn obj(&self) -> usize {
            std::ptr::from_ref(&self.inner) as usize
        }

        /// Acquires the mutex, yielding to the scheduler first when
        /// instrumented. Poisoning is mirrored from the inner mutex.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let model = if let Some(ctx) = engine::current() {
                ctx.op_lock(self.obj(), self.site);
                true
            } else {
                false
            };
            // Under a session the scheduler has certified the mutex
            // free, so this acquire is uncontended; outside a session
            // it blocks like any std lock.
            let (inner, poisoned) = match self.inner.lock() {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            let guard = MutexGuard {
                lock: self,
                inner: Some(inner),
                model,
            };
            if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        }
    }

    /// RAII guard mirroring [`std::sync::MutexGuard`]; dropping it
    /// releases the real mutex first and then informs the scheduler.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: bool,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner
                .as_deref()
                .unwrap_or_else(|| unreachable!("guard accessed after release"))
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner
                .as_deref_mut()
                .unwrap_or_else(|| unreachable!("guard accessed after release"))
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real mutex before telling the scheduler, so
            // whoever is granted the lock next finds it free.
            drop(self.inner.take());
            if self.model {
                if let Some(ctx) = engine::current() {
                    if std::thread::panicking() {
                        // Mid-unwind (assertion failure or abort): free
                        // the model lock without yielding — this thread
                        // still holds the "running" slot, so no other
                        // thread is granted until it finishes or yields.
                        ctx.release_during_unwind(self.lock.obj());
                    } else {
                        ctx.op_unlock(self.lock.obj(), self.lock.site);
                    }
                }
            }
        }
    }

    /// A condition variable that models `wait` as an atomic
    /// release-and-block transition in the scheduler, so lost wakeups
    /// (notify with no waiter parked yet) are explored deterministically.
    pub struct Condvar {
        inner: std::sync::Condvar,
        site: &'static Location<'static>,
    }

    impl Condvar {
        /// Creates a condvar; the call site names it in witness traces.
        #[track_caller]
        pub fn new() -> Condvar {
            Condvar {
                inner: std::sync::Condvar::new(),
                site: Location::caller(),
            }
        }

        fn obj(&self) -> usize {
            std::ptr::from_ref(&self.inner) as usize
        }

        /// Blocks until notified, releasing `guard`'s mutex for the
        /// duration and reacquiring it before returning — the std
        /// contract, but scheduled as a single model transition.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let lock = guard.lock;
            if guard.model {
                if let Some(ctx) = engine::current() {
                    // Release the real mutex, neutralize the guard's
                    // Drop (the model transition takes over release +
                    // reacquire bookkeeping), and park in the engine.
                    drop(guard.inner.take());
                    std::mem::forget(guard);
                    ctx.op_cv_wait(self.obj(), self.site, lock.obj(), lock.site);
                    // The scheduler has re-granted us the mutex.
                    let (inner, poisoned) = match lock.inner.lock() {
                        Ok(g) => (g, false),
                        Err(p) => (p.into_inner(), true),
                    };
                    let g = MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: true,
                    };
                    return if poisoned {
                        Err(PoisonError::new(g))
                    } else {
                        Ok(g)
                    };
                }
            }
            // Passthrough: delegate to the real condvar.
            let std_guard = guard
                .inner
                .take()
                .unwrap_or_else(|| unreachable!("guard accessed after release"));
            std::mem::forget(guard);
            let (inner, poisoned) = match self.inner.wait(std_guard) {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            let g = MutexGuard {
                lock,
                inner: Some(inner),
                model: false,
            };
            if poisoned {
                Err(PoisonError::new(g))
            } else {
                Ok(g)
            }
        }

        /// Wakes one waiter (a scheduled transition under a session).
        pub fn notify_one(&self) {
            if let Some(ctx) = engine::current() {
                ctx.op_notify(self.obj(), self.site, false);
            } else {
                self.inner.notify_one();
            }
        }

        /// Wakes every waiter (a scheduled transition under a session).
        pub fn notify_all(&self) {
            if let Some(ctx) = engine::current() {
                ctx.op_notify(self.obj(), self.site, true);
            } else {
                self.inner.notify_all();
            }
        }
    }

    impl Default for Condvar {
        #[track_caller]
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:path, $prim:ty, $label:literal) => {
            /// Instrumented atomic: every access is a yield point under
            /// a model session, a plain std atomic op otherwise. The
            /// checker explores sequentially consistent interleavings
            /// only (each access is a scheduled transition), regardless
            /// of the `Ordering` argument.
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates the atomic (`const`, so statics keep working).
                pub const fn new(value: $prim) -> $name {
                    $name {
                        inner: <$std>::new(value),
                    }
                }

                fn obj(&self) -> usize {
                    std::ptr::from_ref(&self.inner) as usize
                }

                /// Atomic load (a read transition under a session).
                #[track_caller]
                pub fn load(&self, order: Ordering) -> $prim {
                    if let Some(ctx) = engine::current() {
                        ctx.op_atomic(self.obj(), AtomicKind::Load, $label, Location::caller());
                    }
                    self.inner.load(order)
                }

                /// Atomic store (a write transition under a session).
                #[track_caller]
                pub fn store(&self, value: $prim, order: Ordering) {
                    if let Some(ctx) = engine::current() {
                        ctx.op_atomic(self.obj(), AtomicKind::Store, $label, Location::caller());
                    }
                    self.inner.store(value, order);
                }

                /// Atomic swap (a read-modify-write transition).
                #[track_caller]
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    if let Some(ctx) = engine::current() {
                        ctx.op_atomic(self.obj(), AtomicKind::Rmw, $label, Location::caller());
                    }
                    self.inner.swap(value, order)
                }
            }
        };
    }

    instrumented_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        "AtomicUsize"
    );
    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64, "AtomicU64");
    instrumented_atomic!(
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool,
        "AtomicBool"
    );

    macro_rules! instrumented_fetch {
        ($name:ident, $prim:ty, $label:literal) => {
            impl $name {
                /// Atomic add, returning the previous value (a
                /// read-modify-write transition under a session).
                #[track_caller]
                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    if let Some(ctx) = engine::current() {
                        ctx.op_atomic(self.obj(), AtomicKind::Rmw, $label, Location::caller());
                    }
                    self.inner.fetch_add(value, order)
                }

                /// Atomic subtract, returning the previous value.
                #[track_caller]
                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    if let Some(ctx) = engine::current() {
                        ctx.op_atomic(self.obj(), AtomicKind::Rmw, $label, Location::caller());
                    }
                    self.inner.fetch_sub(value, order)
                }

                /// Atomic compare-and-exchange (a read-modify-write
                /// transition under a session).
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    if let Some(ctx) = engine::current() {
                        ctx.op_atomic(self.obj(), AtomicKind::Rmw, $label, Location::caller());
                    }
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    instrumented_fetch!(AtomicUsize, usize, "AtomicUsize");
    instrumented_fetch!(AtomicU64, u64, "AtomicU64");
}
