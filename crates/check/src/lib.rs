//! # sweep-check
//!
//! Deterministic concurrency model checking for the workspace's
//! concurrent subsystems (the `sweep-pool` lock-free range splitting and the
//! `sweep-serve` single-flight cache), in the style of CHESS / loom /
//! shuttle — but dependency-free and `unsafe`-free, like everything
//! else in this tree.
//!
//! The crate has two faces, switched by the **`model-check`** cargo
//! feature:
//!
//! * **Feature off (the default, and what production builds use):**
//!   [`sync`] is a literal re-export of `std::sync` types and
//!   [`thread`] of `std::thread` — no wrapper structs, no extra state,
//!   no runtime cost. Code "ported onto the shim" compiles to exactly
//!   what it compiled to before.
//!
//! * **Feature on:** [`sync`] exposes wrapper types whose every
//!   `lock`/`unlock`/`wait`/`notify`/atomic op is a *yield point*: the
//!   op is posted to a per-model engine session that serializes all
//!   threads and decides, at each step, which one runs next. The
//!   `explore` driver re-runs a model body under many schedules —
//!   bounded exhaustive DFS with sleep-set partial-order reduction for
//!   small models, plus seeded random schedules for large ones — and
//!   reports deadlocks, double-locks, lost wakeups, lock-order cycles
//!   (with witness traces), and assertion failures (non-linearizable
//!   outcomes surface as model panics).
//!
//! Threads that are *not* running inside a model session use the real
//! `std::sync` behavior even when the feature is enabled, so enabling
//! `model-check` (e.g. through cargo feature unification in a test
//! build) never changes the semantics of ordinary code.
//!
//! ```
//! // Compiles identically with and without the feature:
//! use sweep_check::sync::Mutex;
//! let m = Mutex::new(41);
//! *m.lock().unwrap_or_else(|p| p.into_inner()) += 1;
//! ```
//!
//! The intentionally buggy models in `fixtures` (an inverted lock
//! order, a wait-without-recheck consumer, a leaderless single-flight,
//! a non-linearizable deque steal) prove the checker actually finds
//! each bug class; `sweep check --fixtures` runs them from the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod sync;

#[cfg(feature = "model-check")]
pub(crate) mod engine;

#[cfg(feature = "model-check")]
pub mod explore;

pub mod thread;

#[cfg(feature = "model-check")]
pub mod fixtures;

#[cfg(feature = "model-check")]
pub use explore::{explore, Config, ExploreReport, Finding, FindingKind, LockCycle, LockEdge};
