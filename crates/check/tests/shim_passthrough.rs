//! Zero-cost assertion for the default build: without the
//! `model-check` feature, the shim's types must be *type-identical* to
//! `std::sync` / `std::thread` — no wrapper structs, no extra state —
//! so code ported onto the shim compiles to exactly what it compiled
//! to before.

#![cfg(not(feature = "model-check"))]
#![allow(clippy::unwrap_used)]

/// Compile-time type identity: these functions only type-check if the
/// shim names *are* the std types (a newtype with the same API would
/// fail here).
#[test]
fn shim_types_are_std_types() {
    fn takes_std_mutex(_: &std::sync::Mutex<i32>) {}
    fn takes_std_condvar(_: &std::sync::Condvar) {}
    fn takes_std_atomic(_: &std::sync::atomic::AtomicUsize) {}
    fn takes_std_handle(_: std::thread::JoinHandle<()>) {}

    let m: sweep_check::sync::Mutex<i32> = sweep_check::sync::Mutex::new(1);
    takes_std_mutex(&m);

    let c: sweep_check::sync::Condvar = sweep_check::sync::Condvar::new();
    takes_std_condvar(&c);

    let a: sweep_check::sync::atomic::AtomicUsize = sweep_check::sync::atomic::AtomicUsize::new(0);
    takes_std_atomic(&a);

    let h: sweep_check::thread::JoinHandle<()> = sweep_check::thread::spawn(|| {});
    takes_std_handle(h);
}

/// Size identity — belt and braces on top of type identity (trivially
/// true given the above, but states the "no wrapper state" invariant
/// in the form the acceptance criterion asks for).
#[test]
fn shim_types_add_no_state() {
    assert_eq!(
        std::mem::size_of::<sweep_check::sync::Mutex<u64>>(),
        std::mem::size_of::<std::sync::Mutex<u64>>(),
    );
    assert_eq!(
        std::mem::size_of::<sweep_check::sync::Condvar>(),
        std::mem::size_of::<std::sync::Condvar>(),
    );
    assert_eq!(
        std::mem::size_of::<sweep_check::sync::atomic::AtomicUsize>(),
        std::mem::size_of::<usize>(),
    );
}

/// Behavior sanity: the usual lock/wait/notify dance works through the
/// shim names.
#[test]
fn shim_behaves_like_std() {
    use std::sync::Arc;
    use sweep_check::sync::{Condvar, Mutex};

    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let pair2 = Arc::clone(&pair);
    let t = sweep_check::thread::spawn(move || {
        let (m, cv) = &*pair2;
        *m.lock().unwrap() = true;
        cv.notify_one();
    });
    let (m, cv) = &*pair;
    let mut ready = m.lock().unwrap();
    while !*ready {
        ready = cv.wait(ready).unwrap();
    }
    assert!(*ready);
    t.join().unwrap();
}
