//! Model-check engine tests: every seeded fixture bug is found with
//! the expected classification, correct models come back clean and
//! complete, and the instrumented shim still passes through for
//! threads outside a session.

#![cfg(feature = "model-check")]
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use sweep_check::sync::{Condvar, Mutex};
use sweep_check::{explore, fixtures, Config, FindingKind};

fn cfg() -> Config {
    Config {
        max_executions: 2000,
        max_steps: 10_000,
        random_schedules: 0,
        ..Config::default()
    }
}

fn ride<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------- clean models

/// A correct two-thread counter: exhaustively explored, no findings.
#[test]
fn clean_counter_is_complete_and_finding_free() {
    let report = explore("test.counter", &cfg(), || {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = Arc::clone(&n);
        let t = sweep_check::thread::spawn(move || {
            *ride(n2.lock()) += 1;
        });
        *ride(n.lock()) += 1;
        t.join().unwrap();
        assert_eq!(*ride(n.lock()), 2);
    });
    assert!(report.complete, "small model should exhaust: {report:?}");
    assert!(report.finding.is_none(), "unexpected: {:?}", report.finding);
    assert!(report.lock_cycles.is_empty());
    assert!(report.executions >= 2, "must explore >1 interleaving");
}

/// A correct condvar handoff (predicate re-checked in a loop under one
/// critical section) never loses the wakeup.
#[test]
fn clean_condvar_handoff_has_no_lost_wakeup() {
    let report = explore("test.handoff", &cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = sweep_check::thread::spawn(move || {
            *ride(pair2.0.lock()) = true;
            pair2.1.notify_one();
        });
        let mut ready = ride(pair.0.lock());
        while !*ready {
            ready = ride(pair.1.wait(ready));
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.complete, "handoff should exhaust: {report:?}");
    assert!(report.finding.is_none(), "unexpected: {:?}", report.finding);
}

/// Consistent nesting (always a-then-b) produces edges but no cycle.
#[test]
fn consistent_lock_order_has_edges_but_no_cycle() {
    let report = explore("test.nested", &cfg(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = sweep_check::thread::spawn(move || {
            let _ga = ride(a2.lock());
            let _gb = ride(b2.lock());
        });
        {
            let _ga = ride(a.lock());
            let _gb = ride(b.lock());
        }
        t.join().unwrap();
    });
    assert!(report.finding.is_none(), "unexpected: {:?}", report.finding);
    assert!(!report.lock_edges.is_empty(), "nesting must record an edge");
    assert!(report.lock_cycles.is_empty(), "consistent order, no cycle");
}

// ------------------------------------------------------------- seeded fixtures

#[test]
fn fixture_inverted_locks_deadlocks_with_cycle() {
    let report = explore("fixture.inverted-locks", &cfg(), fixtures::inverted_locks);
    let finding = report.finding.expect("AB-BA must deadlock");
    assert_eq!(finding.kind, FindingKind::Deadlock, "{finding:?}");
    assert!(!finding.witness.is_empty(), "finding must carry a witness");
    assert!(
        finding.witness.iter().any(|l| l.contains("lock Mutex@")),
        "witness should show the lock steps: {:?}",
        finding.witness
    );
    assert!(
        !report.lock_cycles.is_empty(),
        "AB-BA must also show up as a lock-order cycle"
    );
    let cycle = &report.lock_cycles[0];
    assert_eq!(cycle.classes.len(), 2, "two classes in the cycle");
    assert!(!cycle.witnesses.is_empty(), "cycle carries edge witnesses");
}

#[test]
fn fixture_lost_wakeup_is_found() {
    let report = explore("fixture.lost-wakeup", &cfg(), fixtures::lost_wakeup);
    let finding = report.finding.expect("check-then-wait must lose a wakeup");
    assert_eq!(finding.kind, FindingKind::LostWakeup, "{finding:?}");
    assert!(
        finding.witness.iter().any(|l| l.contains("Condvar::wait")),
        "witness should name the parked thread: {:?}",
        finding.witness
    );
}

#[test]
fn fixture_single_flight_leak_stalls() {
    let report = explore(
        "fixture.single-flight-leak",
        &cfg(),
        fixtures::leaky_single_flight,
    );
    let finding = report.finding.expect("abandoned follower must stall");
    // The follower is parked on the flight condvar with no publisher
    // left: classified as a lost wakeup; consumers map single-flight
    // models to the SW027 liveness diagnostic.
    assert_eq!(finding.kind, FindingKind::LostWakeup, "{finding:?}");
}

#[test]
fn fixture_buggy_deque_is_non_linearizable() {
    let report = explore("fixture.buggy-deque", &cfg(), fixtures::buggy_deque);
    let finding = report.finding.expect("peek/pop race must trip the assert");
    assert_eq!(finding.kind, FindingKind::ModelPanic, "{finding:?}");
    assert!(
        finding.message.contains("lost or duplicated"),
        "panic message should surface the assertion: {}",
        finding.message
    );
}

/// The fixture registry stays in sync with the fixture functions and
/// every registered fixture fails its check (a checker that stops
/// seeing seeded bugs is broken).
#[test]
fn every_registered_fixture_fails() {
    assert_eq!(fixtures::FIXTURES.len(), 4);
    for fixture in fixtures::FIXTURES {
        let report = explore(fixture.name, &cfg(), fixture.body);
        assert!(
            report.has_finding(),
            "fixture {} came back clean: {report:?}",
            fixture.name
        );
    }
}

// --------------------------------------------------------- double lock / bounds

#[test]
fn double_lock_is_reported_at_the_reacquire() {
    let report = explore("test.double-lock", &cfg(), || {
        let m = Arc::new(Mutex::new(0u32));
        let _g1 = ride(m.lock());
        let _g2 = ride(m.lock());
    });
    let finding = report.finding.expect("self-deadlock must be found");
    assert_eq!(finding.kind, FindingKind::DoubleLock, "{finding:?}");
}

#[test]
fn step_bound_catches_runaway_models() {
    let tight = Config {
        max_steps: 8,
        ..cfg()
    };
    let report = explore("test.runaway", &tight, || {
        let m = Arc::new(Mutex::new(0u32));
        for _ in 0..100 {
            *ride(m.lock()) += 1;
        }
    });
    let finding = report.finding.expect("bound must trip");
    assert_eq!(finding.kind, FindingKind::StepBound, "{finding:?}");
}

// ----------------------------------------------------------- random schedules

/// Random mode also finds the deque race (seeded, deterministic).
#[test]
fn random_schedules_find_the_deque_race() {
    let random_only = Config {
        max_executions: 0,
        random_schedules: 64,
        seed: 7,
        ..cfg()
    };
    let report = explore("fixture.buggy-deque", &random_only, fixtures::buggy_deque);
    assert!(
        report.finding.is_some(),
        "64 random schedules should hit the race: {report:?}"
    );
}

/// Same seed, same schedules: the exploration itself is deterministic.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        let report = explore("test.counter-det", &cfg(), || {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&n);
            let t = sweep_check::thread::spawn(move || {
                *ride(n2.lock()) += 1;
            });
            *ride(n.lock()) += 1;
            t.join().unwrap();
        });
        (report.executions, report.steps, report.complete)
    };
    assert_eq!(run(), run());
}

// ------------------------------------------------------------ passthrough path

/// With the feature ON, threads outside any session still get real
/// std::sync behavior from the instrumented types (feature unification
/// cannot change production semantics).
#[test]
fn unregistered_threads_pass_through() {
    let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
    let pair2 = Arc::clone(&pair);
    let t = std::thread::spawn(move || {
        *ride(pair2.0.lock()) = 5;
        pair2.1.notify_all();
    });
    let mut v = ride(pair.0.lock());
    while *v != 5 {
        v = ride(pair.1.wait(v));
    }
    drop(v);
    t.join().unwrap();
    let a = sweep_check::sync::atomic::AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, std::sync::atomic::Ordering::SeqCst), 1);
    assert_eq!(a.load(std::sync::atomic::Ordering::SeqCst), 3);
}
