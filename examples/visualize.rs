//! Writes ParaView-ready VTK files of a scheduled sweep: the mesh with
//! per-cell processor assignment, combined-layer index of the first
//! direction, scheduled start time, and (after a transport solve) the
//! scalar flux. Open `sweep_visualization.vtk` in ParaView/VisIt and
//! color by `processor` to see the block structure, or by `start_dir0`
//! to watch the sweep front.
//!
//! ```sh
//! cargo run --release --example visualize
//! ```

use sweep_scheduling::prelude::*;

fn main() {
    let mesh = MeshPreset::WellLogging.build_scaled(0.03).expect("mesh");
    let quad = QuadratureSet::level_symmetric(2).expect("S2");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "viz");
    let n = instance.num_cells();

    // Mesh quality — the stand-in meshes should be defensible elements.
    let q = quality_report(&mesh);
    println!(
        "mesh: {} cells, min/mean element quality {:.3}/{:.3}, volume grading {:.1}",
        n, q.min_radius_ratio, q.mean_radius_ratio, q.volume_ratio
    );

    // Block assignment + schedule.
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    let blocks = block_partition(&graph, 8, &PartitionOptions::default());
    let m = 16;
    let assignment = Assignment::random_blocks(&blocks, m, 3);
    let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 4);
    validate(&instance, &schedule).expect("feasible");
    println!(
        "schedule: makespan {} on {m} processors (lower bound {})",
        schedule.makespan(),
        lower_bounds(&instance, m).best()
    );

    // Transport solve for a flux field.
    let solver = TransportSolver::new(
        &mesh,
        &quad,
        Material {
            sigma_t: 1.0,
            sigma_s: 0.5,
            source: 1.0,
        },
    )
    .expect("solver");
    let result = solver.solve(300, 1e-7);
    println!(
        "transport: {} iterations, converged = {}",
        result.iterations, result.converged
    );

    // Per-cell fields.
    let proc_field: Vec<f64> = (0..n as u32)
        .map(|v| schedule.proc_of_cell(v) as f64)
        .collect();
    let level0 = sweep_scheduling::dag::levels(instance.dag(0));
    let level_field: Vec<f64> = (0..n).map(|v| level0.level_of[v] as f64).collect();
    let start_field: Vec<f64> = (0..n as u32)
        .map(|v| schedule.start_of(TaskId::pack(v, 0, n)) as f64)
        .collect();
    let block_field: Vec<f64> = blocks.iter().map(|&b| b as f64).collect();

    let vtk = to_vtk(
        &mesh,
        &[
            ("processor", &proc_field),
            ("block", &block_field),
            ("level_dir0", &level_field),
            ("start_dir0", &start_field),
            ("scalar_flux", &result.phi),
        ],
    )
    .expect("vtk serialization");
    let path = "sweep_visualization.vtk";
    std::fs::write(path, &vtk).expect("write vtk");
    println!("wrote {path} ({} bytes) — open in ParaView", vtk.len());

    // ASCII Gantt preview of the first processors.
    let gantt = render_gantt(&instance, &schedule, 72);
    let preview: String = gantt.lines().take(9).collect::<Vec<_>>().join("\n");
    println!("\n{preview}\n(… one row per processor)");
}
