//! Head-to-head comparison of every scheduler in the paper (§5.2).
//!
//! All algorithms share the same block assignment (so C1 is identical,
//! as in the paper) and are compared on makespan, normalized by the lower
//! bound `max{nk/m, k, D}`.
//!
//! ```sh
//! cargo run --release --example heuristic_shootout
//! ```

use sweep_scheduling::prelude::*;

fn main() {
    let mesh = MeshPreset::Long.build_scaled(0.03).expect("mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "long-3%");
    println!(
        "instance: {} cells × {} directions = {} tasks, depth {}",
        instance.num_cells(),
        instance.num_directions(),
        instance.num_tasks(),
        instance.max_depth()
    );

    // Block size scaled with the mesh so the number of blocks stays well
    // above the largest m (the paper's full-size meshes have 500–1800
    // blocks); here 1853 cells / 8 ≈ 230 blocks.
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    let blocks = block_partition(&graph, 8, &PartitionOptions::default());

    println!(
        "\n{:<22} {:>9} {:>9} {:>7}",
        "algorithm", "m=16", "m=48", "m=96"
    );
    println!("{}", "-".repeat(50));
    for alg in Algorithm::COMPARISON_SET {
        print!("{:<22}", alg.name());
        for m in [16usize, 48, 96] {
            let assignment = Assignment::random_blocks(&blocks, m, 11);
            let schedule = alg.run(&instance, assignment, 13);
            validate(&instance, &schedule).expect("feasible");
            let ratio = approx_ratio(&instance, m, schedule.makespan());
            print!(" {:>8.2}x", ratio);
        }
        println!();
    }
    println!(
        "\n(values are makespan / lower-bound; the paper reports all algorithms \
         within ~3x and Random-Delays-with-Priorities competitive with DFDS)"
    );
}
