//! Non-geometric instances: the paper notes its algorithms "assume no
//! relation between the DAGs in different directions, and thus are
//! applicable even to non-geometric instances". This example schedules
//! (a) a random-layered instance, (b) random chains, and (c) the
//! adversarial identical-chains family on which running *without* random
//! delays collapses to full serialization.
//!
//! ```sh
//! cargo run --release --example custom_instance
//! ```

use sweep_scheduling::core::{random_delay, random_delay_with};
use sweep_scheduling::prelude::*;

fn report(label: &str, instance: &SweepInstance, m: usize) {
    let assignment = Assignment::random_cells(instance.num_cells(), m, 21);
    let schedule = Algorithm::RandomDelayPriorities.run(instance, assignment, 22);
    validate(instance, &schedule).expect("feasible");
    let lb = lower_bounds(instance, m);
    println!(
        "{label:<28} n={:<6} k={:<3} D={:<5} makespan={:<6} lb={:<6} ratio={:.2}",
        instance.num_cells(),
        instance.num_directions(),
        instance.max_depth(),
        schedule.makespan(),
        lb.best(),
        schedule.makespan() as f64 / lb.best() as f64
    );
}

fn main() {
    let m = 32;
    println!("scheduling non-geometric instances on {m} processors:\n");

    report(
        "random layered",
        &SweepInstance::random_layered(4000, 16, 40, 3, 1),
        m,
    );
    report("random chains", &SweepInstance::random_chains(800, 8, 2), m);
    report(
        "bottleneck (w=64, d=20)",
        &SweepInstance::bottleneck(64, 20, 8),
        m,
    );

    // The adversarial family: identical chains in every direction.
    println!("\nidentical chains (n=200, k=16) — why random delays matter:");
    let inst = SweepInstance::identical_chains(200, 16);
    let a = Assignment::random_cells(200, m, 5);
    let no_delay = random_delay_with(&inst, a.clone(), &[0; 16]);
    let with_delay = random_delay(&inst, a.clone(), 7);
    let compacted = Algorithm::RandomDelayPriorities.run(&inst, a, 7);
    println!(
        "  layer-sequential, zero delays : {:>6}  (= n·k, full serialization)",
        no_delay.makespan()
    );
    println!(
        "  layer-sequential, random delays: {:>6}",
        with_delay.makespan()
    );
    println!(
        "  with priority compaction       : {:>6}  (lower bound {})",
        compacted.makespan(),
        lower_bounds(&inst, m).best()
    );
}
