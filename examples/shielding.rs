//! A shielding configuration: a strong source region surrounded by an
//! absorbing shield inside a light background medium — the kind of
//! heterogeneous problem S_n codes exist for. Solves the transport
//! problem with per-cell materials, then schedules the sweeps with
//! cost-weighted cells (heavier cells where the physics is stiffer)
//! using LPT block placement.
//!
//! ```sh
//! cargo run --release --example shielding
//! ```

use sweep_scheduling::core::Assignment;
use sweep_scheduling::prelude::*;
use sweep_scheduling::sim::Material;

fn main() {
    let mesh = MeshPreset::Tetonly.build_scaled(0.05).expect("mesh");
    let quad = QuadratureSet::level_symmetric(2).expect("S2");
    let n = mesh.num_cells();

    // Geometry: source ball (r < 0.15 of the domain center), shield shell
    // (0.15 ≤ r < 0.3), background elsewhere.
    let center = Vec3::new(0.5, 0.5, 0.5);
    let region = |c: u32| -> u8 {
        let r = mesh
            .centroid(sweep_scheduling::mesh::CellId(c))
            .distance(center);
        if r < 0.15 {
            0 // source
        } else if r < 0.3 {
            1 // shield
        } else {
            2 // background
        }
    };
    let materials: Vec<Material> = (0..n as u32)
        .map(|c| match region(c) {
            0 => Material {
                sigma_t: 1.0,
                sigma_s: 0.5,
                source: 10.0,
            },
            1 => Material {
                sigma_t: 5.0,
                sigma_s: 0.5,
                source: 0.0,
            },
            _ => Material {
                sigma_t: 0.5,
                sigma_s: 0.25,
                source: 0.0,
            },
        })
        .collect();
    let counts = (0..n as u32).fold([0usize; 3], |mut acc, c| {
        acc[region(c) as usize] += 1;
        acc
    });
    println!(
        "shielding problem: {n} cells (source {}, shield {}, background {})",
        counts[0], counts[1], counts[2]
    );

    let solver = TransportSolver::with_materials(&mesh, &quad, materials).expect("solver");
    let result = solver.solve(800, 1e-8);
    println!(
        "transport: {} iterations, residual {:.1e}, converged = {}",
        result.iterations, result.residual, result.converged
    );
    // Flux must decay across the shield.
    let mean_of = |reg: u8| {
        let (mut sum, mut cnt) = (0.0f64, 0usize);
        for c in 0..n as u32 {
            if region(c) == reg {
                sum += result.phi[c as usize];
                cnt += 1;
            }
        }
        sum / cnt as f64
    };
    let (src, shield, bg) = (mean_of(0), mean_of(1), mean_of(2));
    println!("mean flux: source {src:.3}  shield {shield:.3}  background {bg:.3}");
    assert!(src > shield && shield > bg, "flux must decay outward");

    // Scheduling with physics-informed cell costs: stiff (high σ_t) cells
    // cost more. Weight-balanced blocks + LPT placement (the
    // `weighted_cells` experiment's winning policy).
    let weights: Vec<u64> = (0..n as u32)
        .map(|c| match region(c) {
            1 => 4, // shield cells: more expensive local solve
            0 => 2,
            _ => 1,
        })
        .collect();
    let instance = solver.instance();
    let m = 32;
    let (xadj, adjncy) = mesh.adjacency_csr();
    let mut graph = CsrGraph::from_csr_parts(xadj, adjncy);
    graph.vwgt = weights.iter().map(|&w| w as u32).collect();
    let nblocks = n.div_ceil(16);
    let blocks =
        sweep_scheduling::partition::partition(&graph, nblocks, &PartitionOptions::default());

    let lpt = Assignment::lpt_blocks(&blocks, &weights, m);
    let sched = weighted_random_delay_priorities(instance, lpt, &weights, 7);
    validate_weighted(instance, &sched, &weights).expect("feasible");
    let lb = weighted_lower_bound(instance, &weights, m);
    println!(
        "\nweighted sweep schedule on {m} processors: makespan {} (weighted lower bound {}, ratio {:.3})",
        sched.makespan,
        lb,
        sched.makespan as f64 / lb as f64
    );
    let rand = Assignment::random_blocks(&blocks, m, 7);
    let sched_rand = weighted_random_delay_priorities(instance, rand, &weights, 7);
    println!(
        "random block placement for comparison: makespan {} (ratio {:.3})",
        sched_rand.makespan,
        sched_rand.makespan as f64 / lb as f64
    );
}
