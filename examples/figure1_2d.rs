//! The paper's Figure 1, recreated: a small 2-D unstructured mesh, the
//! digraph one sweep direction induces on it, and the level (wavefront)
//! structure — rendered as SVG files you can open in a browser, plus the
//! DOT source of the induced DAG for Graphviz.
//!
//! ```sh
//! cargo run --release --example figure1_2d
//! ```

use sweep_scheduling::dag::{levels, to_dot};
use sweep_scheduling::mesh::{levels_svg, to_svg_2d, ColorMap};
use sweep_scheduling::prelude::*;

fn main() {
    // A small jittered triangulation like the paper's Figure 1(a).
    let mesh = TriMesh2d::unit_square(6, 6, 0.25, 2).expect("mesh");
    let quad = QuadratureSet::uniform_2d(8).expect("fan");
    let (instance, stats) = SweepInstance::from_mesh(&mesh, &quad, "figure1");
    println!(
        "mesh: {} triangles; direction 0 induces {} edges ({} dropped by cycle breaking)",
        mesh.num_cells(),
        instance.dag(0).num_edges(),
        stats[0].dropped_edges
    );

    // Figure 1(b): the level structure of direction 0.
    let lv = levels(instance.dag(0));
    println!("levels (D = {}):", lv.depth());
    for (j, layer) in lv.iter().enumerate().take(6) {
        println!("  L{}: {} cells", j + 1, layer.len());
    }
    if lv.depth() > 6 {
        println!("  … {} more layers", lv.depth() - 6);
    }

    // SVG renderings: the sweep wavefront and a 4-processor assignment.
    let svg_levels = levels_svg(&mesh, &lv.level_of, 480).expect("svg");
    std::fs::write("figure1_levels.svg", &svg_levels).expect("write svg");
    let assignment = Assignment::random_cells(mesh.num_cells(), 4, 3);
    let procs: Vec<f64> = assignment.as_slice().iter().map(|&p| p as f64).collect();
    let svg_procs = to_svg_2d(&mesh, &procs, ColorMap::Categorical, 480).expect("svg");
    std::fs::write("figure1_processors.svg", &svg_procs).expect("write svg");
    println!("wrote figure1_levels.svg and figure1_processors.svg");

    // Graphviz DOT of the induced DAG (small enough to lay out).
    match to_dot(instance.dag(0), "figure1_direction0", 200) {
        Ok(dot) => {
            std::fs::write("figure1_dag.dot", &dot).expect("write dot");
            println!(
                "wrote figure1_dag.dot ({} ranks) — render with `dot -Tpng`",
                lv.depth()
            );
        }
        Err(e) => println!("skipping DOT export: {e}"),
    }

    // And of course: schedule it.
    let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 5);
    validate(&instance, &schedule).expect("feasible");
    println!(
        "schedule on 4 processors: makespan {} (lower bound {})",
        schedule.makespan(),
        lower_bounds(&instance, 4).best()
    );
}
