//! End-to-end radiation transport: the application sweeps exist for.
//!
//! Solves a one-group fixed-source transport problem on an unstructured
//! mesh by source iteration, where each outer iteration performs one sweep
//! per direction — the exact computation whose parallel schedule the paper
//! optimizes. Afterwards the sweep instance is scheduled on a virtual
//! cluster and the compute/communication trade-off of per-cell vs block
//! assignment is reported.
//!
//! ```sh
//! cargo run --release --example transport_solver
//! ```

use sweep_scheduling::prelude::*;

fn main() {
    let mesh = MeshPreset::WellLogging.build_scaled(0.05).expect("mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    println!(
        "well-logging stand-in: {} cells (borehole domain), {} directions",
        mesh.num_cells(),
        quad.len()
    );

    // --- Physics: a mildly scattering medium with a unit source. ---
    let material = Material {
        sigma_t: 1.0,
        sigma_s: 0.6,
        source: 1.0,
    };
    let solver = TransportSolver::new(&mesh, &quad, material).expect("solver");
    let result = solver.solve(500, 1e-8);
    println!(
        "source iteration: {} iterations, residual {:.2e}, converged = {}",
        result.iterations, result.residual, result.converged
    );
    let phi = &result.phi;
    let mean = phi.iter().sum::<f64>() / phi.len() as f64;
    let max = phi.iter().fold(0.0f64, |a, &b| a.max(b));
    println!("scalar flux: mean {mean:.4}, max {max:.4}");

    // --- Scheduling the very sweeps the solver just ran. ---
    let instance = solver.instance();
    let m = 64;
    println!(
        "\nscheduling {} tasks on {} processors:",
        instance.num_tasks(),
        m
    );

    // Per-cell random assignment (Algorithm 2 as analyzed).
    let per_cell = Assignment::random_cells(instance.num_cells(), m, 1);
    let s1 = Algorithm::RandomDelayPriorities.run(instance, per_cell, 2);
    validate(instance, &s1).expect("feasible");

    // Block assignment (paper §5.1): partition with the multilevel
    // partitioner, one random processor per block.
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    let blocks = block_partition(&graph, 8, &PartitionOptions::default());
    let per_block = Assignment::random_blocks(&blocks, m, 1);
    let s2 = Algorithm::RandomDelayPriorities.run(instance, per_block, 2);
    validate(instance, &s2).expect("feasible");

    let lb = lower_bounds(instance, m).best();
    for (name, s) in [("per-cell", &s1), ("block-8", &s2)] {
        let rep = simulate(
            instance,
            s,
            &SimConfig {
                compute_cost: 1.0,
                comm_cost: 0.1,
                model: CommModel::MaxSend,
            },
        );
        println!(
            "  {name:9} makespan {:5} (ratio {:.2})  C1 {:7}  C2 {:6}  est. time {:.0}",
            s.makespan(),
            s.makespan() as f64 / lb as f64,
            c1_interprocessor_edges(instance, s.assignment()),
            rep.comm_units,
            rep.total_time,
        );
    }
    println!("\nblock assignment trades a slightly longer makespan for far fewer messages (paper Fig. 2).");
}
