//! Quickstart: mesh → directions → DAGs → schedule → metrics in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sweep_scheduling::prelude::*;

fn main() {
    // 1. A synthetic unstructured tetrahedral mesh (2% of the paper's
    //    `tetonly`: ~630 cells) and the S4 quadrature (24 directions, as in
    //    the paper's Figure 2).
    let mesh = MeshPreset::Tetonly
        .build_scaled(0.02)
        .expect("mesh generation");
    let quad = QuadratureSet::level_symmetric(4).expect("S4 quadrature");
    println!(
        "mesh: {} cells, {} interior faces; quadrature: {} ({} directions)",
        mesh.num_cells(),
        mesh.interior_faces().len(),
        quad.name(),
        quad.len()
    );

    // 2. Induce one dependence DAG per direction (cycles broken
    //    geometrically).
    let (instance, stats) = SweepInstance::from_mesh(&mesh, &quad, "quickstart");
    let dropped: usize = stats.iter().map(|s| s.dropped_edges).sum();
    println!(
        "instance: {} tasks, {} precedence edges ({} dropped by cycle breaking), depth D = {}",
        instance.num_tasks(),
        instance.total_edges(),
        dropped,
        instance.max_depth()
    );

    // 3. Schedule on m = 32 processors with Algorithm 2 ("Random Delays
    //    with Priorities"), the paper's practical recommendation.
    let m = 32;
    let assignment = Assignment::random_cells(instance.num_cells(), m, 42);
    let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 7);
    validate(&instance, &schedule).expect("schedule must be feasible");

    // 4. Report the paper's quality measures.
    let lb = lower_bounds(&instance, m);
    println!(
        "makespan = {} on {} processors (lower bound {}, ratio {:.2}, utilization {:.0}%)",
        schedule.makespan(),
        m,
        lb.best(),
        schedule.makespan() as f64 / lb.best() as f64,
        100.0 * schedule.utilization()
    );
    let c1 = c1_interprocessor_edges(&instance, schedule.assignment());
    let c2 = c2_comm_delay(&instance, &schedule);
    println!("communication: C1 = {c1} interprocessor edges, C2 = {c2} delay units");
}
