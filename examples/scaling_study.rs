//! Strong-scaling study: the paper's claim that the schedule length stays
//! below `3·nk/m` — i.e. near-linear speedup — up to hundreds of
//! processors (§2, observation 3).
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use sweep_scheduling::prelude::*;

fn main() {
    let mesh = MeshPreset::Tetonly.build_scaled(0.05).expect("mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "tetonly-5%");
    let nk = instance.num_tasks() as f64;
    println!(
        "instance: {} tasks, depth {} — sweeping m = 2 … 512\n",
        instance.num_tasks(),
        instance.max_depth()
    );
    println!(
        "{:>5} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "m", "makespan", "nk/m", "ratio", "speedup", "≤3nk/m?"
    );
    let mut m = 2usize;
    let baseline = nk; // makespan on one processor is exactly nk
    while m <= 512 {
        let assignment = Assignment::random_cells(instance.num_cells(), m, 3);
        let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 5);
        validate(&instance, &schedule).expect("feasible");
        let avg = nk / m as f64;
        let ratio = schedule.makespan() as f64 / avg;
        let speedup = baseline / schedule.makespan() as f64;
        println!(
            "{:>5} {:>9} {:>9.1} {:>8.2} {:>9.1} {:>10}",
            m,
            schedule.makespan(),
            avg,
            ratio,
            speedup,
            if ratio <= 3.0 { "yes" } else { "NO" }
        );
        m *= 2;
    }
    println!("\nratio = makespan/(nk/m); the paper observes ratio ≤ 3 throughout.");
}
