//! Actually runs a sweep in parallel on OS threads — one worker per
//! simulated processor — and cross-checks the result against a sequential
//! sweep. Demonstrates that the cell→processor assignments produced by
//! `sweep-core` drive a real shared-memory parallel computation (the
//! message-passing structure mirrors MPI-based transport codes).
//!
//! ```sh
//! cargo run --release --example parallel_execution
//! ```

use std::time::Instant;

use sweep_scheduling::prelude::*;
use sweep_scheduling::sim::execute_sequential;

fn main() {
    let mesh = MeshPreset::Tetonly.build_scaled(0.25).expect("mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "exec");
    println!(
        "executing {} tasks ({} cells × {} directions)\n",
        instance.num_tasks(),
        instance.num_cells(),
        instance.num_directions()
    );

    let t0 = Instant::now();
    let reference = execute_sequential(&instance);
    let seq_time = t0.elapsed().as_secs_f64();
    println!("sequential reference: checksum {reference:.3}, {seq_time:.3}s");

    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    println!("hardware threads available: {hw}\n");
    println!(
        "{:>4} {:>10} {:>9} {:>11}",
        "m", "wall (s)", "speedup", "checksum ok"
    );
    for m in [1usize, 2, 4, 8] {
        if m > hw {
            break;
        }
        let assignment = Assignment::random_cells(instance.num_cells(), m, 9);
        let report = execute_parallel(&instance, &assignment, hw);
        let ok = (report.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0);
        println!(
            "{:>4} {:>10.3} {:>9.2} {:>11}",
            m,
            report.wall_seconds,
            seq_time / report.wall_seconds,
            if ok { "yes" } else { "MISMATCH" }
        );
        assert!(ok, "parallel execution diverged from the sequential sweep");
    }
    println!(
        "\n(speedups here reflect the executor's fine task granularity; the \
         schedules' value shows in the makespan/communication studies)"
    );
}
